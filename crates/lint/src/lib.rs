//! Self-hosted static analysis for the trace-preconstruction
//! workspace.
//!
//! Every scaling claim this repo makes — bit-identical sweeps across
//! `--jobs`, content-addressed cell caching, seed-derived backoff,
//! fault schedules as pure functions of (plan, cycle) — rests on
//! invariants that `clippy` cannot express. This crate parses the
//! workspace's **own** Rust source with a hand-rolled lexer and
//! token-tree parser (std-only, offline, no `syn`) and enforces
//! them statically:
//!
//! * **Determinism** ([`rules::determinism`]) — no `HashMap`/
//!   `HashSet`, wall clocks, thread identity, or pointer-value
//!   formatting in production paths that feed `SimStats`,
//!   checkpoints, the result cache, or reports.
//! * **Panic hygiene** ([`rules::panics`]) — no `unwrap`/`expect`/
//!   `panic!` and no uncommented indexing in the supervised worker
//!   and daemon paths, where `catch_unwind` retry classification
//!   requires panics to be exceptional.
//! * **Hot-path arithmetic** ([`rules::arith`]) — narrowing casts in
//!   the per-cycle simulator loop need explicit justification.
//! * **Cross-file conformance** ([`rules::conformance`]) — the
//!   `SimStats` 62-word codec, `FaultKind`/`FaultStats`/chaos
//!   coverage, the service wire protocol across
//!   `spec.rs`/`client.rs`/`server.rs`, and `--jobs` on every
//!   experiment bin.
//!
//! Suppressions live in `lint_allow.txt` at the workspace root; every
//! entry carries a mandatory written justification and goes stale
//! (hard error) the moment its finding disappears. The `tpc_lint`
//! binary is a hard gate in `scripts/verify.sh` and writes per-rule
//! counts to `BENCH_lint.json`.
//!
//! The linter lints itself: `crates/lint/src` is part of the scanned
//! workspace and plays by the same rules.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod tree;
pub mod workspace;

pub use report::Finding;
pub use workspace::Workspace;
