//! The rule engine: runs every pass over a loaded [`Workspace`] and
//! returns the combined finding list in canonical order.
//!
//! Rules come in two shapes:
//!
//! * **per-file passes** (determinism, panic hygiene, hot-path
//!   arithmetic) that scan token trees of one file at a time, scoped
//!   by path; and
//! * **cross-file conformance passes** that extract facts from
//!   several files (struct fields, codec word counts, enum variants,
//!   protocol string literals, CLI flags) and compare them.

pub mod arith;
pub mod conformance;
pub mod determinism;
pub mod panics;

use crate::report::{self, Finding};
use crate::tree::Tree;
use crate::workspace::{SourceFile, Workspace};

/// Every rule id, in report order. `BENCH_lint.json` lists each one
/// even at zero findings.
pub const RULE_IDS: &[&str] = &[
    "det-hash-collection",
    "det-wall-clock",
    "det-ambient-id",
    "panic-path",
    "panic-index",
    "hot-arith",
    "conf-simstats-codec",
    "conf-faultkind",
    "conf-protocol",
    "conf-jobs-flag",
    "conf-frontend-matrix",
];

/// Runs all rules over the workspace; findings come back sorted by
/// (file, line, rule).
pub fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        determinism::check(file, &mut findings);
        panics::check(file, &mut findings);
        arith::check(file, &mut findings);
    }
    conformance::check(ws, &mut findings);
    report::sort(&mut findings);
    findings
}

/// Calls `f` on every token sequence in the forest: the top level
/// and the children of every group, recursively. Window-pattern
/// rules scan each sequence with sibling context intact.
pub fn for_each_seq<'t>(trees: &'t [Tree], f: &mut dyn FnMut(&'t [Tree])) {
    f(trees);
    for t in trees {
        if let Tree::Group { children, .. } = t {
            for_each_seq(children, f);
        }
    }
}

/// Convenience constructor: a finding at `line` of `file`, with the
/// source line as the excerpt.
pub fn finding(rule: &'static str, file: &SourceFile, line: u32, msg: String) -> Finding {
    Finding {
        rule,
        file: file.rel.clone(),
        line,
        msg,
        excerpt: file.line_text(line).to_string(),
    }
}
