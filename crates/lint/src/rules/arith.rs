//! Arithmetic discipline in the per-cycle hot path.
//!
//! `hot-arith` scans the simulator's per-cycle functions — the code
//! that runs hundreds of millions of times per sweep — for `as`
//! casts to a narrower integer type. A narrowing cast silently
//! truncates; inside the hot path every one must either be rewritten
//! as an explicit masked/wrapping operation or carry a
//! `// narrow: …` comment proving the value fits. (Widening casts
//! and `as usize` for indexing are exact and stay unflagged.)

use crate::report::Finding;
use crate::rules::{finding, for_each_seq};
use crate::tree::fn_bodies;
use crate::workspace::SourceFile;

/// The per-cycle call graph of the simulator: `step` and everything
/// it dispatches into each cycle.
const HOT_FNS: &[&str] = &[
    "step",
    "apply_faults",
    "retire_stage",
    "fetch_stage",
    "begin_slow_build",
    "advance_slow_build",
    "dispatch",
];

/// Integer types narrower than the repo's dominant `u64`/`usize`
/// counters — casting down to these truncates.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Runs the hot-path arithmetic rule (simulator.rs only).
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel != "crates/processor/src/simulator.rs" {
        return;
    }
    for hot in HOT_FNS {
        for (_, body) in fn_bodies(&file.trees, hot) {
            for_each_seq(body, &mut |seq| {
                for (i, t) in seq.iter().enumerate() {
                    let narrow_cast = t.is_ident("as")
                        && seq
                            .get(i + 1)
                            .is_some_and(|n| NARROW.iter().any(|ty| n.is_ident(ty)));
                    if narrow_cast && !file.has_marker(t.line(), "narrow:") {
                        out.push(finding(
                            "hot-arith",
                            file,
                            t.line(),
                            format!(
                                "narrowing `as {}` in hot fn `{hot}` without `// narrow:` comment",
                                seq.get(i + 1).map(|n| n.text()).unwrap_or(""),
                            ),
                        ));
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::{parse, strip_cfg_test};

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile {
            rel: "crates/processor/src/simulator.rs".into(),
            lines: src.lines().map(str::to_string).collect(),
            trees: strip_cfg_test(parse(&lex(src).unwrap()).unwrap()),
        };
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn flags_narrowing_casts_in_hot_fns_only() {
        let f = run("fn step(&mut self) { let x = y as u8; }\nfn cold() { let x = y as u8; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "hot-arith");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn widening_and_usize_casts_are_fine() {
        let f = run("fn step(&mut self) { let x = y as u64; let i = z as usize; }");
        assert!(f.is_empty());
    }

    #[test]
    fn narrow_comment_justifies() {
        let f = run("fn step(&mut self) { let x = (y & 1) as u8; // narrow: masked to 1 bit\n }");
        assert!(f.is_empty());
    }
}
