//! Cross-file conformance rules.
//!
//! These extract facts from several files and compare them — the
//! drift clippy can't see:
//!
//! * `conf-simstats-codec`: the `SimStats` struct, its `WORDS`
//!   constant, and the `to_words` encoder must agree — the word
//!   count summed from `to_words` (literal arrays plus the two
//!   `NUM_FAULT_KINDS`-sized fault arrays) must equal `WORDS`, and
//!   every struct field must appear in both `to_words` and
//!   `from_words`.
//! * `conf-faultkind`: `FaultKind` variants vs `NUM_FAULT_KINDS` vs
//!   the `ALL` array vs `name()` vs the per-kind `FaultStats`
//!   arrays vs the simulator's `apply_faults` match vs the
//!   degradation experiment's all-kinds fault plan.
//! * `conf-protocol`: ops the client/spec send must be exactly the
//!   ops the server matches; events the server emits must be
//!   exactly the events the client matches; reply ops the client
//!   checks must be ones the server emits.
//! * `conf-jobs-flag`: every experiment bin must expose and
//!   document `--jobs`.
//! * `conf-frontend-matrix`: every `impl Frontend for <Type>` in the
//!   workspace must have that type exercised by the
//!   differential-oracle crate — a frontend nobody cross-checks
//!   against the golden model is an unverified retirement stream.

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};
use crate::report::Finding;
use crate::rules::{finding, for_each_seq};
use crate::tree::{fn_bodies, walk, Tree};
use crate::workspace::{SourceFile, Workspace};

/// Runs every conformance rule over the workspace.
pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    simstats_codec(ws, out);
    faultkind(ws, out);
    protocol(ws, out);
    jobs_flag(ws, out);
    frontend_matrix(ws, out);
}

/// A finding that reports a broken extraction — the rule must fail
/// loudly if the code it audits moves out from under it.
fn broken(rule: &'static str, file: &SourceFile, msg: String) -> Finding {
    finding(rule, file, 1, format!("extraction failed: {msg}"))
}

// ---- shared extraction helpers ----------------------------------

/// All identifier texts in a forest.
fn idents(trees: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    walk(trees, &mut |t| {
        if let Tree::Leaf(tok) = t {
            if tok.kind == TokKind::Ident {
                out.push(tok.text.clone());
            }
        }
    });
    out
}

/// The integer value of `const NAME … = <num>` anywhere in the file.
fn const_value(file: &SourceFile, name: &str) -> Option<u64> {
    let mut found = None;
    for_each_seq(&file.trees, &mut |seq| {
        for (i, t) in seq.iter().enumerate() {
            if t.is_ident("const") && seq.get(i + 1).is_some_and(|n| n.is_ident(name)) {
                for later in &seq[i + 2..] {
                    if later.is_punct(";") {
                        break;
                    }
                    if let Tree::Leaf(tok) = later {
                        if tok.kind == TokKind::Num {
                            found = tok.text.replace('_', "").parse().ok();
                            return;
                        }
                    }
                }
            }
        }
    });
    found
}

/// The body children of `<kw> <name> { … }` (struct or enum),
/// searching nested groups.
fn item_body<'t>(trees: &'t [Tree], kw: &str, name: &str) -> Option<&'t [Tree]> {
    let mut found = None;
    for_each_seq_ref(trees, &mut |seq| {
        for (i, t) in seq.iter().enumerate() {
            if t.is_ident(kw) && seq.get(i + 1).is_some_and(|n| n.is_ident(name)) {
                for later in &seq[i + 2..] {
                    if later.is_group('{') {
                        found = Some(later.children());
                        return;
                    }
                    if later.is_punct(";") {
                        break;
                    }
                }
            }
        }
    });
    found
}

/// Like [`for_each_seq`] but usable when the closure needs to store
/// borrowed slices from the forest.
fn for_each_seq_ref<'t>(trees: &'t [Tree], f: &mut dyn FnMut(&'t [Tree])) {
    f(trees);
    for t in trees {
        if let Tree::Group { children, .. } = t {
            for_each_seq_ref(children, f);
        }
    }
}

/// Field names of a struct body: idents directly followed by `:`,
/// skipping visibility and attributes, one per comma-separated
/// entry.
fn struct_fields(body: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    let mut expecting = true;
    let mut i = 0usize;
    while i < body.len() {
        // bound: i < body.len() guarded by the loop condition
        let t = &body[i];
        if t.is_punct(",") {
            expecting = true;
            i += 1;
            continue;
        }
        if t.is_punct("#") {
            i += 2; // attribute: `#` + bracket group
            continue;
        }
        if expecting && !t.is_ident("pub") {
            if let Tree::Leaf(tok) = t {
                if tok.kind == TokKind::Ident && body.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                    out.push(tok.text.clone());
                }
            }
            expecting = false;
        }
        i += 1;
    }
    out
}

/// Variant names of an enum body (skips attributes and `= <num>`
/// discriminants).
fn enum_variants(body: &[Tree]) -> Vec<String> {
    let mut out = Vec::new();
    let mut expecting = true;
    let mut i = 0usize;
    while i < body.len() {
        // bound: i < body.len() guarded by the loop condition
        let t = &body[i];
        if t.is_punct(",") {
            expecting = true;
            i += 1;
            continue;
        }
        if t.is_punct("#") {
            i += 2; // attribute: `#` + bracket group
            continue;
        }
        if expecting {
            if let Tree::Leaf(tok) = t {
                if tok.kind == TokKind::Ident {
                    out.push(tok.text.clone());
                }
            }
            expecting = false;
        }
        i += 1;
    }
    out
}

/// Decoded content of a string-literal token (quotes stripped,
/// `\"` and `\\` unescaped; raw strings have their fences stripped).
fn str_content(tok: &Tok) -> Option<String> {
    match tok.kind {
        TokKind::Str => {
            let inner = tok.text.get(1..tok.text.len().saturating_sub(1))?;
            Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
        }
        TokKind::RawStr => {
            let start = tok.text.find('"')? + 1;
            let end = tok.text.rfind('"')?;
            tok.text.get(start..end).map(str::to_string)
        }
        _ => None,
    }
}

/// String-literal contents of every `Some("…")` pattern followed by
/// `=>` or `|` — i.e. match arms over an optional string field.
fn match_arm_strs(file: &SourceFile, preceded_by_eq: bool) -> Vec<String> {
    let mut out = Vec::new();
    for_each_seq(&file.trees, &mut |seq| {
        for (i, t) in seq.iter().enumerate() {
            if !t.is_ident("Some") {
                continue;
            }
            let Some(arg) = seq.get(i + 1) else { continue };
            if !arg.is_group('(') || arg.children().len() != 1 {
                continue;
            }
            let Some(Tree::Leaf(tok)) = arg.children().first() else {
                continue;
            };
            let Some(content) = str_content(tok) else {
                continue;
            };
            let is_arm = seq
                .get(i + 2)
                .is_some_and(|n| n.is_punct("=>") || n.is_punct("|"));
            let is_eq = i > 0 && seq[i - 1].is_punct("==");
            let wanted = if preceded_by_eq {
                is_eq
            } else {
                is_arm && !is_eq
            };
            if wanted {
                out.push(content);
            }
        }
    });
    sort_dedup(out)
}

/// `key:"value"` occurrences embedded inside the file's string
/// literals — the wire-format ops/events the code writes.
fn embedded_values(file: &SourceFile, key: &str) -> Vec<String> {
    let marker = format!("\"{key}\":\"");
    let mut out = Vec::new();
    walk(&file.trees, &mut |t| {
        let Tree::Leaf(tok) = t else { return };
        let Some(content) = str_content(tok) else {
            return;
        };
        let mut rest = content.as_str();
        while let Some(at) = rest.find(&marker) {
            let tail = &rest[at + marker.len()..];
            if let Some(end) = tail.find('"') {
                out.push(tail[..end].to_string());
                rest = &tail[end..];
            } else {
                break;
            }
        }
    });
    sort_dedup(out)
}

fn sort_dedup(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v.dedup();
    v
}

// ---- conf-simstats-codec ----------------------------------------

fn simstats_codec(ws: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "conf-simstats-codec";
    let Some(sim) = ws.get("crates/processor/src/simulator.rs") else {
        return;
    };
    let Some(faults) = ws.get("crates/core/src/faults.rs") else {
        return;
    };
    let Some(num_kinds) = const_value(faults, "NUM_FAULT_KINDS") else {
        out.push(broken(
            RULE,
            faults,
            "NUM_FAULT_KINDS const not found".into(),
        ));
        return;
    };
    let Some(words_const) = const_value(sim, "WORDS") else {
        out.push(broken(RULE, sim, "SimStats::WORDS const not found".into()));
        return;
    };
    let bodies = fn_bodies(&sim.trees, "to_words");
    let Some((to_words_line, to_words)) = bodies.first().map(|(l, b)| (*l, *b)) else {
        out.push(broken(RULE, sim, "fn to_words not found".into()));
        return;
    };
    // Sum the encoder's word count: literal arrays contribute their
    // element count, bare `w.extend(<array field>)` contributes
    // NUM_FAULT_KINDS, `w.push` contributes one.
    let mut total = 0u64;
    for (i, t) in to_words.iter().enumerate() {
        if !t.is_ident("w") || !to_words.get(i + 1).is_some_and(|n| n.is_punct(".")) {
            continue;
        }
        let method = to_words.get(i + 2);
        let Some(args) = to_words.get(i + 3).filter(|a| a.is_group('(')) else {
            continue;
        };
        if method.is_some_and(|m| m.is_ident("push")) {
            total += 1;
        } else if method.is_some_and(|m| m.is_ident("extend")) {
            match args.children().first() {
                Some(arr) if arr.is_group('[') => {
                    let commas = arr.children().iter().filter(|c| c.is_punct(",")).count() as u64;
                    let trailing = arr.children().last().is_some_and(|c| c.is_punct(","));
                    total += commas + u64::from(!trailing);
                }
                Some(_) => total += num_kinds,
                None => {}
            }
        }
    }
    if total != words_const {
        out.push(finding(
            RULE,
            sim,
            to_words_line,
            format!(
                "to_words encodes {total} words but SimStats::WORDS is {words_const} \
                 (with NUM_FAULT_KINDS = {num_kinds})"
            ),
        ));
    }
    // Every SimStats field must appear in both codec directions.
    let Some(body) = item_body(&sim.trees, "struct", "SimStats") else {
        out.push(broken(RULE, sim, "struct SimStats not found".into()));
        return;
    };
    let fields = struct_fields(body);
    if fields.is_empty() {
        out.push(broken(
            RULE,
            sim,
            "struct SimStats has no parsed fields".into(),
        ));
        return;
    }
    let to_ids = idents(to_words);
    let from_ids = fn_bodies(&sim.trees, "from_words")
        .first()
        .map(|(_, b)| idents(b))
        .unwrap_or_default();
    if from_ids.is_empty() {
        out.push(broken(RULE, sim, "fn from_words not found".into()));
        return;
    }
    for field in fields {
        for (dir, ids) in [("to_words", &to_ids), ("from_words", &from_ids)] {
            if !ids.contains(&field) {
                out.push(finding(
                    RULE,
                    sim,
                    to_words_line,
                    format!("SimStats field `{field}` is not encoded by {dir}"),
                ));
            }
        }
    }
}

// ---- conf-faultkind ---------------------------------------------

fn faultkind(ws: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "conf-faultkind";
    let Some(faults) = ws.get("crates/core/src/faults.rs") else {
        return;
    };
    let Some(body) = item_body(&faults.trees, "enum", "FaultKind") else {
        out.push(broken(RULE, faults, "enum FaultKind not found".into()));
        return;
    };
    let variants = enum_variants(body);
    let Some(num_kinds) = const_value(faults, "NUM_FAULT_KINDS") else {
        out.push(broken(
            RULE,
            faults,
            "NUM_FAULT_KINDS const not found".into(),
        ));
        return;
    };
    if variants.len() as u64 != num_kinds {
        out.push(finding(
            RULE,
            faults,
            1,
            format!(
                "FaultKind has {} variants but NUM_FAULT_KINDS is {num_kinds}",
                variants.len()
            ),
        ));
    }
    // The ALL array must name every variant.
    let mut all_entries: Vec<String> = Vec::new();
    for_each_seq(&faults.trees, &mut |seq| {
        for (i, t) in seq.iter().enumerate() {
            if t.is_ident("ALL") {
                for later in &seq[i + 1..] {
                    if later.is_punct(";") {
                        break;
                    }
                    if later.is_group('[') && later.children().iter().any(|c| c.is_punct(",")) {
                        let kids = later.children();
                        for (j, k) in kids.iter().enumerate() {
                            let named = k.is_punct("::")
                                && j + 1 < kids.len()
                                && matches!(&kids[j + 1], Tree::Leaf(tok)
                                    if tok.kind == TokKind::Ident);
                            if named {
                                // bound: j + 1 < kids.len() checked above
                                all_entries.push(kids[j + 1].text().to_string());
                            }
                        }
                    }
                }
            }
        }
    });
    check_covers(RULE, faults, "FaultKind::ALL", &all_entries, &variants, out);
    // name() and the simulator's apply_faults must match every kind.
    let name_ids = fn_bodies(&faults.trees, "name")
        .first()
        .map(|(_, b)| idents(b))
        .unwrap_or_default();
    check_covers(RULE, faults, "FaultKind::name()", &name_ids, &variants, out);
    // Per-kind counter arrays must be sized by NUM_FAULT_KINDS.
    if let Some(stats_body) = item_body(&faults.trees, "struct", "FaultStats") {
        let stats_src = idents(stats_body);
        for arr in ["injected_by_kind", "landed_by_kind"] {
            if !stats_src.contains(&arr.to_string()) {
                out.push(finding(
                    RULE,
                    faults,
                    1,
                    format!("FaultStats is missing per-kind array `{arr}`"),
                ));
            }
        }
        let sized = stats_src.iter().filter(|s| *s == "NUM_FAULT_KINDS").count();
        if sized < 2 {
            out.push(finding(
                RULE,
                faults,
                1,
                "FaultStats per-kind arrays are not sized by NUM_FAULT_KINDS".to_string(),
            ));
        }
    } else {
        out.push(broken(RULE, faults, "struct FaultStats not found".into()));
    }
    if let Some(sim) = ws.get("crates/processor/src/simulator.rs") {
        let apply_ids = fn_bodies(&sim.trees, "apply_faults")
            .first()
            .map(|(_, b)| idents(b))
            .unwrap_or_default();
        check_covers(RULE, sim, "apply_faults", &apply_ids, &variants, out);
    }
    // Chaos coverage: the degradation experiment must schedule every
    // kind (FaultPlan::all), not a hand-picked subset.
    if let Some(deg) = ws.get("crates/experiments/src/degradation.rs") {
        let mut uses_all = false;
        for_each_seq(&deg.trees, &mut |seq| {
            for (i, t) in seq.iter().enumerate() {
                if t.is_ident("FaultPlan")
                    && seq.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && seq.get(i + 2).is_some_and(|n| n.is_ident("all"))
                {
                    uses_all = true;
                }
            }
        });
        if !uses_all {
            out.push(finding(
                RULE,
                deg,
                1,
                "degradation experiment no longer sweeps all fault kinds (FaultPlan::all)"
                    .to_string(),
            ));
        }
    }
}

/// Emits a finding for every `variant` missing from `ids`.
fn check_covers(
    rule: &'static str,
    file: &SourceFile,
    what: &str,
    ids: &[String],
    variants: &[String],
    out: &mut Vec<Finding>,
) {
    if ids.is_empty() {
        out.push(broken(rule, file, format!("{what} not found")));
        return;
    }
    for v in variants {
        if !ids.contains(v) {
            out.push(finding(
                rule,
                file,
                1,
                format!("{what} does not cover FaultKind::{v}"),
            ));
        }
    }
}

// ---- conf-protocol ----------------------------------------------

fn protocol(ws: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "conf-protocol";
    let (Some(spec), Some(client), Some(server)) = (
        ws.get("crates/service/src/spec.rs"),
        ws.get("crates/service/src/client.rs"),
        ws.get("crates/service/src/server.rs"),
    ) else {
        return;
    };
    // Ops the client side puts on the wire vs ops the server
    // dispatches on.
    let mut sent_ops = embedded_values(client, "op");
    sent_ops.extend(embedded_values(spec, "op"));
    let sent_ops = sort_dedup(sent_ops);
    let served_ops = match_arm_strs(server, false);
    if sent_ops != served_ops {
        out.push(finding(
            RULE,
            server,
            1,
            format!("ops sent by client/spec {sent_ops:?} != ops matched by server {served_ops:?}"),
        ));
    }
    // Events the server emits vs events the client dispatches on.
    let emitted_events = embedded_values(server, "event");
    let handled_events = match_arm_strs(client, false);
    if emitted_events != handled_events {
        out.push(finding(
            RULE,
            client,
            1,
            format!(
                "events emitted by server {emitted_events:?} != events matched by client \
                 {handled_events:?}"
            ),
        ));
    }
    // Reply ops the client insists on must be ones the server emits.
    let reply_ops = embedded_values(server, "op");
    for checked in match_arm_strs(client, true) {
        if !reply_ops.contains(&checked) {
            out.push(finding(
                RULE,
                client,
                1,
                format!("client checks reply op {checked:?} that the server never emits"),
            ));
        }
    }
}

// ---- conf-jobs-flag ---------------------------------------------

fn jobs_flag(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in ws.with_prefix("crates/experiments/src/bin/") {
        let mentions_jobs = file.lines.iter().any(|l| l.contains("--jobs"));
        if !mentions_jobs {
            out.push(finding(
                "conf-jobs-flag",
                file,
                1,
                "experiment bin does not expose/document --jobs".to_string(),
            ));
        }
    }
}

/// Every type with an `impl Frontend for …` must be exercised by the
/// differential-oracle crate: the oracle's test matrix is the only
/// thing standing between a new frontend and an unverified retirement
/// stream, so adding a frontend without differential coverage is a
/// lint failure, not a style choice.
fn frontend_matrix(ws: &Workspace, out: &mut Vec<Finding>) {
    const RULE: &str = "conf-frontend-matrix";
    let Some(anchor) = ws.get("crates/exec/src/frontend.rs") else {
        return;
    };
    // Every `impl … Frontend for <Type>` in the workspace (trait
    // bounds like `F: Frontend` never match — they are not followed
    // by `for <ident>`).
    let mut impls: Vec<(&SourceFile, u32, String)> = Vec::new();
    for f in &ws.files {
        for_each_seq(&f.trees, &mut |seq| {
            for i in 0..seq.len() {
                if !seq[i].is_ident("Frontend")
                    || !seq.get(i + 1).is_some_and(|t| t.is_ident("for"))
                    || !seq[..i].iter().any(|t| t.is_ident("impl"))
                {
                    continue;
                }
                if let Some(Tree::Leaf(tok)) = seq.get(i + 2) {
                    if tok.kind == TokKind::Ident {
                        impls.push((f, tok.line, tok.text.clone()));
                    }
                }
            }
        });
    }
    if impls.is_empty() {
        out.push(broken(
            RULE,
            anchor,
            "no `impl Frontend for <Type>` found anywhere in the workspace".to_string(),
        ));
        return;
    }
    let mut oracle_idents: BTreeSet<String> = BTreeSet::new();
    for f in ws.with_prefix("crates/oracle/") {
        oracle_idents.extend(idents(&f.trees));
    }
    for (f, line, name) in impls {
        if !oracle_idents.contains(&name) {
            out.push(finding(
                RULE,
                f,
                line,
                format!(
                    "frontend `{name}` is not exercised by the differential-oracle crate \
                     (crates/oracle never names it)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::{parse, strip_cfg_test};

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile {
            rel: rel.into(),
            lines: src.lines().map(str::to_string).collect(),
            trees: strip_cfg_test(parse(&lex(src).unwrap()).unwrap()),
        }
    }

    #[test]
    fn const_and_struct_extraction() {
        let f = file(
            "x.rs",
            "pub const N: usize = 9;\npub struct S { pub a: u64, #[doc = \"d\"] pub b: [u64; N] }",
        );
        assert_eq!(const_value(&f, "N"), Some(9));
        let body = item_body(&f.trees, "struct", "S").unwrap();
        assert_eq!(struct_fields(body), ["a", "b"]);
    }

    #[test]
    fn enum_variant_extraction_skips_discriminants() {
        let f = file("x.rs", "enum E { #[doc = \"x\"] A = 0, B = 1, C, }");
        let body = item_body(&f.trees, "enum", "E").unwrap();
        assert_eq!(enum_variants(body), ["A", "B", "C"]);
    }

    #[test]
    fn embedded_and_match_arm_strings() {
        let f = file(
            "x.rs",
            "fn f(k: Option<&str>) { let m = \"{\\\"op\\\":\\\"ping\\\",\\\"event\\\":\\\"done\\\"}\";\n\
             match k { Some(\"a\") | Some(\"b\") => {}, _ => {} }\n\
             if k == Some(\"ok\") {} }",
        );
        assert_eq!(embedded_values(&f, "op"), ["ping"]);
        assert_eq!(embedded_values(&f, "event"), ["done"]);
        assert_eq!(match_arm_strs(&f, false), ["a", "b"]);
        assert_eq!(match_arm_strs(&f, true), ["ok"]);
    }

    #[test]
    fn word_count_mismatch_is_flagged() {
        let sim = file(
            "crates/processor/src/simulator.rs",
            "pub struct SimStats { pub a: u64, pub faults: F }\n\
             impl SimStats { pub const WORDS: usize = 5;\n\
             pub fn to_words(&self) -> Vec<u64> { let mut w = Vec::new();\n\
             w.extend([self.a]); w.extend(self.faults.injected_by_kind); w }\n\
             pub fn from_words(words: &[u64]) -> Option<SimStats> { let a = 0; let faults = 0; None } }",
        );
        let faults = file(
            "crates/core/src/faults.rs",
            "pub const NUM_FAULT_KINDS: usize = 2;",
        );
        let ws = Workspace {
            files: vec![sim, faults],
        };
        let mut out = Vec::new();
        simstats_codec(&ws, &mut out);
        // 1 (array) + 2 (by-kind) = 3 != 5.
        assert!(
            out.iter().any(|f| f.msg.contains("encodes 3 words")),
            "{out:?}"
        );
    }

    #[test]
    fn missing_codec_field_is_flagged() {
        let sim = file(
            "crates/processor/src/simulator.rs",
            "pub struct SimStats { pub a: u64, pub b: u64 }\n\
             impl SimStats { pub const WORDS: usize = 2;\n\
             pub fn to_words(&self) -> Vec<u64> { let mut w = Vec::new(); w.extend([self.a, self.b]); w }\n\
             pub fn from_words(words: &[u64]) -> Option<SimStats> { let a = 0; None } }",
        );
        let faults = file(
            "crates/core/src/faults.rs",
            "pub const NUM_FAULT_KINDS: usize = 2;",
        );
        let ws = Workspace {
            files: vec![sim, faults],
        };
        let mut out = Vec::new();
        simstats_codec(&ws, &mut out);
        assert!(out
            .iter()
            .any(|f| f.msg.contains("`b` is not encoded by from_words")));
        assert!(!out.iter().any(|f| f.msg.contains("`a` is not encoded")));
    }

    #[test]
    fn protocol_drift_is_flagged() {
        let spec = file(
            "crates/service/src/spec.rs",
            "fn f() -> String { \"{\\\"op\\\":\\\"sweep\\\"}\".into() }",
        );
        let client = file(
            "crates/service/src/client.rs",
            "fn f(k: Option<&str>) { let p = \"{\\\"op\\\":\\\"ping\\\"}\";\n\
             match k { Some(\"cell\") => {}, _ => {} } }",
        );
        let server = file(
            "crates/service/src/server.rs",
            "fn f(k: Option<&str>) { match k { Some(\"ping\") | Some(\"sweep\") => {}, _ => {} }\n\
             let e = \"{\\\"event\\\":\\\"cell\\\"}\"; let r = \"{\\\"op\\\":\\\"accepted\\\"}\"; }",
        );
        let ws = Workspace {
            files: vec![spec, client, server],
        };
        let mut out = Vec::new();
        protocol(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
        // Now drift: server stops matching "sweep".
        let server2 = file(
            "crates/service/src/server.rs",
            "fn f(k: Option<&str>) { match k { Some(\"ping\") => {}, _ => {} }\n\
             let e = \"{\\\"event\\\":\\\"cell\\\"}\"; }",
        );
        let mut ws2 = ws;
        ws2.files.pop();
        ws2.files.push(server2);
        let mut out2 = Vec::new();
        protocol(&ws2, &mut out2);
        assert!(out2.iter().any(|f| f.msg.contains("ops sent")));
    }

    #[test]
    fn experiment_bins_must_mention_jobs() {
        let good = file(
            "crates/experiments/src/bin/fig5.rs",
            "//! Usage: fig5 [--jobs N]\nfn main() {}",
        );
        let bad = file("crates/experiments/src/bin/fig9.rs", "fn main() {}");
        let ws = Workspace {
            files: vec![good, bad],
        };
        let mut out = Vec::new();
        jobs_flag(&ws, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file, "crates/experiments/src/bin/fig9.rs");
    }

    #[test]
    fn uncovered_frontend_impl_is_flagged() {
        let fe = file(
            "crates/exec/src/frontend.rs",
            "pub trait Frontend {}\nimpl Frontend for Executor<'_> {}",
        );
        let extra = file(
            "crates/exec/src/asm.rs",
            "impl<'a> Frontend for AsmFrontend<'a> {}",
        );
        let oracle = file(
            "crates/oracle/src/bin/asm_run.rs",
            "fn main() { let _: Executor<'_> = todo!(); }",
        );
        let ws = Workspace {
            files: vec![fe, extra, oracle],
        };
        let mut out = Vec::new();
        frontend_matrix(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("AsmFrontend"), "{out:?}");
        assert_eq!(out[0].file, "crates/exec/src/asm.rs");
    }

    #[test]
    fn covered_frontends_are_clean_and_bounds_do_not_match() {
        let fe = file(
            "crates/exec/src/frontend.rs",
            "pub trait Frontend {}\nimpl Frontend for Executor<'_> {}\n\
             fn generic<F: Frontend>(f: F) {}", // bound, not an impl
        );
        let oracle = file("crates/oracle/src/diff.rs", "fn check(e: Executor<'_>) {}");
        let ws = Workspace {
            files: vec![fe, oracle],
        };
        let mut out = Vec::new();
        frontend_matrix(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_frontend_impls_break_the_extraction() {
        let fe = file("crates/exec/src/frontend.rs", "pub trait Frontend {}");
        let ws = Workspace { files: vec![fe] };
        let mut out = Vec::new();
        frontend_matrix(&ws, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("extraction failed"), "{out:?}");
    }
}
