//! Panic-hygiene rules for supervised worker and daemon paths.
//!
//! The supervisor's `catch_unwind` retry classification treats a
//! panic as "retryable chaos" — that only stays sound if panics in
//! the worker/daemon paths are *exceptional*, never routine control
//! flow. Two rules, scoped to the service crate plus the hardened
//! sweep-execution modules it supervises:
//!
//! * `panic-path`: `.unwrap()`, `.expect("…")`, `panic!`,
//!   `unreachable!`, `todo!`. The `.expect(` form is only flagged
//!   when its argument is a string literal — `Option::expect`
//!   /`Result::expect` take `&str`, whereas the JSON parser's own
//!   `fn expect(&mut self, b: u8)` takes byte literals and is
//!   ordinary fallible parsing, not a panic.
//! * `panic-index`: `expr[…]` indexing and slicing, which panic on
//!   out-of-bounds, unless the same or previous line carries a
//!   `// bound: …` comment stating why the index is in range.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::{finding, for_each_seq};
use crate::tree::Tree;
use crate::workspace::SourceFile;

/// Files whose panics the supervisor must be able to treat as
/// exceptional: the whole service crate plus the hardened parallel
/// executor and checkpoint modules it drives. The chaos gate binary
/// is excluded — it is a test harness whose assertions (panics)
/// are the point, and nothing it runs passes through the
/// supervisor's retry classification.
fn in_scope(rel: &str) -> bool {
    (rel.starts_with("crates/service/src/") && rel != "crates/service/src/bin/chaos_service.rs")
        || rel == "crates/experiments/src/par_sweep.rs"
        || rel == "crates/experiments/src/checkpoint.rs"
}

/// Identifier-like tokens that may precede `[` without it being an
/// index expression (array literals/types after keywords).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "break", "else", "as", "let", "mut", "const", "static", "move", "ref", "dyn",
    "where", "match", "loop", "use", "pub", "type", "if", "while", "box", "yield",
];

/// Runs both panic rules over one file (no-op outside the scope).
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    for_each_seq(&file.trees, &mut |seq| {
        for (i, t) in seq.iter().enumerate() {
            // `.unwrap()` / `.expect("…")` method calls.
            if t.is_punct(".") {
                let name = seq.get(i + 1);
                let args = seq.get(i + 2);
                if let (Some(name), Some(args)) = (name, args) {
                    if name.is_ident("unwrap") && args.is_group('(') && args.children().is_empty() {
                        out.push(finding(
                            "panic-path",
                            file,
                            name.line(),
                            ".unwrap() in supervised path".to_string(),
                        ));
                    }
                    let str_arg = args.children().first().is_some_and(|c| {
                        matches!(c, Tree::Leaf(tok)
                            if matches!(tok.kind, TokKind::Str | TokKind::RawStr))
                    });
                    if name.is_ident("expect") && args.is_group('(') && str_arg {
                        out.push(finding(
                            "panic-path",
                            file,
                            name.line(),
                            ".expect(\"…\") in supervised path".to_string(),
                        ));
                    }
                }
            }
            // `panic!` / `unreachable!` / `todo!` macro invocations.
            let is_panic_macro =
                (t.is_ident("panic") || t.is_ident("unreachable") || t.is_ident("todo"))
                    && seq.get(i + 1).is_some_and(|n| n.is_punct("!"));
            if is_panic_macro {
                out.push(finding(
                    "panic-path",
                    file,
                    t.line(),
                    format!("{}! in supervised path", t.text()),
                ));
            }
            // `expr[…]` indexing without a bound comment.
            if t.is_group('[') && i > 0 {
                let prev = &seq[i - 1];
                let indexable = match prev {
                    Tree::Leaf(tok) => {
                        (tok.kind == TokKind::Ident
                            && !NON_INDEX_KEYWORDS.contains(&tok.text.as_str()))
                            || tok.kind == TokKind::Str
                    }
                    Tree::Group { open, .. } => matches!(open, '(' | '['),
                };
                if indexable && !file.has_marker(t.line(), "bound:") {
                    out.push(finding(
                        "panic-index",
                        file,
                        t.line(),
                        "indexing without a `// bound:` comment".to_string(),
                    ));
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::{parse, strip_cfg_test};

    fn run_at(rel: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile {
            rel: rel.into(),
            lines: src.lines().map(str::to_string).collect(),
            trees: strip_cfg_test(parse(&lex(src).unwrap()).unwrap()),
        };
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    fn run(src: &str) -> Vec<Finding> {
        run_at("crates/service/src/x.rs", src)
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let f = run_at(
            "crates/core/src/x.rs",
            "fn f(v: &[u8]) { v[0]; panic!(\"x\"); }",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let f = run("fn f(o: Option<u8>) { o.unwrap(); o.expect(\"msg\"); panic!(\"x\"); }");
        let rules: Vec<&str> = f.iter().map(|x| x.msg.as_str()).collect();
        assert_eq!(f.len(), 3, "{rules:?}");
        assert!(f.iter().all(|x| x.rule == "panic-path"));
    }

    #[test]
    fn byte_expect_is_fallible_parsing_not_panic() {
        // json.rs's own `fn expect(&mut self, b: u8)` — byte-literal
        // argument, must not be flagged.
        let f = run("fn f(p: &mut P) { p.expect(b'{')?; }");
        assert!(f.is_empty());
    }

    #[test]
    fn indexing_needs_bound_comment() {
        let f = run("fn f(v: &[u8]) { let a = v[0]; }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panic-index");
        let ok = run("fn f(v: &[u8]) { let a = v[0]; // bound: len checked by caller\n }");
        assert!(ok.is_empty());
        let prev =
            run("fn f(v: &[u8]) {\n // bound: non-empty by construction\n let a = v[0];\n }");
        assert!(prev.is_empty());
    }

    #[test]
    fn array_literals_and_macros_are_not_indexing() {
        let f = run("fn f() -> [u8; 2] { let v = vec![1, 2]; return [1, 2]; }");
        assert!(f.is_empty());
    }
}
