//! Nondeterminism-hazard rules.
//!
//! Everything this repo publishes — `SimStats`, checkpoints, the
//! result cache, `BENCH_*.json`, `report_full.md` — must be a pure
//! function of (program, config, seed). Three per-file rules guard
//! that:
//!
//! * `det-hash-collection`: `HashMap`/`HashSet` anywhere in
//!   production code. Their iteration order is seeded per-process
//!   (`RandomState`), so any iteration that feeds output is
//!   nondeterministic; lookup-only uses are one refactor away from
//!   becoming iteration, so the rule flags the types themselves and
//!   the fix is `BTreeMap`/`BTreeSet` (or a justified allowlist
//!   entry for a genuinely hot lookup-only table).
//! * `det-wall-clock`: `Instant`/`SystemTime`/`UNIX_EPOCH`.
//!   Wall-clock reads are fine for *scheduling* (deadlines, backoff
//!   waits) and for *being the measurement* (bench timings) — those
//!   get allowlist entries with that justification — but must never
//!   leak into result content.
//! * `det-ambient-id`: thread identity (`ThreadId`,
//!   `thread::current`) and pointer-value formatting (`{:p}`), both
//!   of which vary per process and per run.

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::rules::{finding, for_each_seq};
use crate::tree::Tree;
use crate::workspace::SourceFile;

/// Runs the three determinism rules over one file.
pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for_each_seq(&file.trees, &mut |seq| {
        for (i, t) in seq.iter().enumerate() {
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                out.push(finding(
                    "det-hash-collection",
                    file,
                    t.line(),
                    format!(
                        "`{}` has per-process iteration order; use BTreeMap/BTreeSet",
                        t.text()
                    ),
                ));
            }
            if t.is_ident("Instant") || t.is_ident("SystemTime") || t.is_ident("UNIX_EPOCH") {
                out.push(finding(
                    "det-wall-clock",
                    file,
                    t.line(),
                    format!("wall-clock source `{}` in production path", t.text()),
                ));
            }
            if t.is_ident("ThreadId") {
                out.push(finding(
                    "det-ambient-id",
                    file,
                    t.line(),
                    "thread identity varies per run".to_string(),
                ));
            }
            // `thread :: current` — thread identity by another door.
            if t.is_ident("thread")
                && seq.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && seq.get(i + 2).is_some_and(|n| n.is_ident("current"))
            {
                out.push(finding(
                    "det-ambient-id",
                    file,
                    t.line(),
                    "thread::current() identity varies per run".to_string(),
                ));
            }
            // Pointer-value formatting leaks ASLR'd addresses.
            if let Tree::Leaf(tok) = t {
                let ptr_fmt: String = ['{', ':', 'p', '}'].iter().collect();
                if tok.kind == TokKind::Str && tok.text.contains(&ptr_fmt) {
                    out.push(finding(
                        "det-ambient-id",
                        file,
                        t.line(),
                        "pointer-value formatting varies per run".to_string(),
                    ));
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::{parse, strip_cfg_test};

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile {
            rel: "t.rs".into(),
            lines: src.lines().map(str::to_string).collect(),
            trees: strip_cfg_test(parse(&lex(src).unwrap()).unwrap()),
        };
        let mut out = Vec::new();
        check(&file, &mut out);
        out
    }

    #[test]
    fn flags_hash_collections_and_clocks() {
        let f = run("use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "det-hash-collection");
        assert_eq!(f[1].rule, "det-wall-clock");
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn ignores_test_modules_and_btree() {
        let f = run(
            "use std::collections::BTreeMap;\n\
             #[cfg(test)]\nmod tests { use std::collections::HashSet; fn t() { let i = Instant::now(); } }\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn flags_thread_identity_and_pointer_format() {
        let src = "fn f() { let id = std::thread::current().id(); }\n";
        let f = run(src);
        assert!(f.iter().any(|x| x.rule == "det-ambient-id"));
        let fmt = "fn f(p: &u8) { println!(\"{:p}\", p); }\n";
        assert!(run(fmt).iter().any(|x| x.rule == "det-ambient-id"));
    }
}
