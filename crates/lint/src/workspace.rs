//! Workspace file discovery and loading.
//!
//! Walks the repo in **sorted directory order** so finding order —
//! and therefore the human report and `BENCH_lint.json` — is
//! deterministic across platforms and runs, the same property the
//! linter enforces on everything else.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::tree::{self, Tree};

/// One loaded, lexed, and tree-parsed Rust source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Raw source lines (no trailing newline), for excerpt and
    /// bound-comment checks.
    pub lines: Vec<String>,
    /// Token trees with every `#[cfg(test)]` item removed —
    /// production code only.
    pub trees: Vec<Tree>,
}

impl SourceFile {
    /// The trimmed source text of a 1-based line (empty if out of
    /// range — e.g. a stale line number from a multi-line token).
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line as usize).saturating_sub(1);
        self.lines.get(idx).map(|s| s.trim()).unwrap_or("")
    }

    /// True when line `line` or the line above carries the given
    /// justification marker (e.g. `bound:` / `narrow:`) in a `//`
    /// comment.
    pub fn has_marker(&self, line: u32, marker: &str) -> bool {
        let has = |l: u32| {
            let t = self.line_text(l);
            t.split("//").nth(1).is_some_and(|c| c.contains(marker))
        };
        has(line) || (line > 1 && has(line - 1))
    }
}

/// All lintable files, in deterministic path order.
pub struct Workspace {
    /// Loaded files sorted by `rel`.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every production source file under `root` (see
    /// [`lint_file_paths`]).
    ///
    /// # Errors
    ///
    /// I/O failures and lexer/parser failures, tagged with the file
    /// path.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        for path in lint_file_paths(root)? {
            let rel = rel_str(root, &path);
            let src = fs::read_to_string(&path).map_err(|e| format!("{rel}: read failed: {e}"))?;
            let toks = lexer::lex(&src).map_err(|e| format!("{rel}: lex: {e}"))?;
            let trees = tree::parse(&toks).map_err(|e| format!("{rel}: parse: {e}"))?;
            files.push(SourceFile {
                rel,
                lines: src.lines().map(str::to_string).collect(),
                trees: tree::strip_cfg_test(trees),
            });
        }
        Ok(Workspace { files })
    }

    /// The file with this workspace-relative path, if loaded.
    pub fn get(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Files whose relative path starts with `prefix`.
    pub fn with_prefix<'w>(&'w self, prefix: &'w str) -> impl Iterator<Item = &'w SourceFile> {
        self.files.iter().filter(move |f| f.rel.starts_with(prefix))
    }
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Production sources the rules run over: `crates/*/src/**/*.rs`
/// plus the root `src/`. Integration tests, examples, and the
/// vendored dependency stubs are excluded — they are test-side code
/// with no production determinism obligations.
pub fn lint_file_paths(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for member in sorted_dir(&crates)? {
        let src = member.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out)?;
    }
    Ok(out)
}

/// Every `.rs` file in the repo — production, tests, examples, and
/// vendored stubs — for the lexer round-trip suite.
pub fn all_rust_file_paths(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut out)?;
        }
    }
    Ok(out)
}

fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = rd.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in sorted_dir(dir)? {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        let name = name.unwrap_or_default();
        if path.is_dir() {
            if name == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory containing both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("repo root")
    }

    #[test]
    fn discovers_known_files() {
        let paths = lint_file_paths(&repo_root()).unwrap();
        let rels: Vec<String> = paths.iter().map(|p| rel_str(&repo_root(), p)).collect();
        assert!(rels
            .iter()
            .any(|r| r == "crates/processor/src/simulator.rs"));
        assert!(rels.iter().any(|r| r == "crates/service/src/supervisor.rs"));
        assert!(rels.iter().any(|r| r == "crates/lint/src/lexer.rs"));
        assert!(!rels.iter().any(|r| r.starts_with("vendor/")));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "discovery order must be deterministic");
    }

    #[test]
    fn loads_and_parses_whole_workspace() {
        let ws = Workspace::load(&repo_root()).unwrap();
        assert!(ws.get("crates/core/src/faults.rs").is_some());
        assert!(ws.files.len() > 30);
    }

    #[test]
    fn marker_detection_checks_same_and_previous_line() {
        let f = SourceFile {
            rel: "x.rs".into(),
            lines: vec![
                "let a = v[i]; // bound: i < len".into(),
                "// bound: j checked above".into(),
                "let b = v[j];".into(),
                "let c = v[k];".into(),
            ],
            trees: Vec::new(),
        };
        assert!(f.has_marker(1, "bound:"));
        assert!(f.has_marker(3, "bound:"));
        assert!(!f.has_marker(4, "bound:"));
    }
}
