//! The golden-model reference interpreter.
//!
//! A minimal, obviously-correct, single-path in-order interpreter
//! over [`Program`]. It shares **only** the instruction set and the
//! control-flow model *specifications* ([`OutcomeModel`] /
//! [`IndirectModel`]) with the production executor — its machine
//! state is laid out differently (maps keyed by register/address
//! instead of dense vectors), it is written for clarity rather than
//! speed, and it takes no shortcuts: every architectural rule from
//! DESIGN.md is spelled out inline. The differential runner compares
//! both the production executor and every simulator configuration
//! against the retired-instruction stream this interpreter produces.

use std::collections::BTreeMap;
use tpc_isa::model::{OutcomeState, XorShift64};
use tpc_isa::{Addr, Op, Program, Reg};

/// Data-address footprint mask, `2^20 - 1` (DESIGN.md: effective
/// addresses fold into a 1 MiB space). Stated independently from the
/// executor so a typo in either copy is caught by the differential
/// cross-check.
const DATA_FOOTPRINT_MASK: u64 = 0xF_FFFF;

/// One instruction retired by the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleInstr {
    /// Instruction address.
    pub pc: Addr,
    /// The instruction.
    pub op: Op,
    /// Branch direction (`false` for non-branches).
    pub taken: bool,
    /// Address of the next architectural instruction.
    pub next_pc: Addr,
    /// Effective byte address for loads/stores.
    pub mem_addr: Option<u64>,
}

/// The deterministic load-value function: a 64-bit finalizer over the
/// effective address (DESIGN.md §2 — memory dataflow is not modelled;
/// load values are a pure function of the address).
fn load_value(addr: u64) -> i64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    z as i64
}

/// The reference interpreter.
///
/// State is held in hash maps so that the oracle's correctness does
/// not depend on any indexing or pre-sizing logic: a register that
/// was never written reads as zero because it is *absent*, not
/// because a vector was zero-initialised to the right length.
#[derive(Debug, Clone)]
pub struct Oracle<'a> {
    program: &'a Program,
    pc: Addr,
    regs: BTreeMap<u8, i64>,
    call_stack: Vec<Addr>,
    branch_states: BTreeMap<u32, OutcomeState>,
    indirect_rngs: BTreeMap<u32, XorShift64>,
    retired: u64,
    completions: u64,
}

impl<'a> Oracle<'a> {
    /// Creates an oracle positioned at the program entry.
    pub fn new(program: &'a Program) -> Self {
        Oracle {
            program,
            pc: program.entry(),
            regs: BTreeMap::new(),
            call_stack: Vec::new(),
            branch_states: BTreeMap::new(),
            indirect_rngs: BTreeMap::new(),
            retired: 0,
            completions: 0,
        }
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Times the program ran to `halt` and restarted.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Current architectural register value (`r0` is always zero).
    pub fn reg(&self, r: Reg) -> i64 {
        if r.is_zero() {
            0
        } else {
            self.regs.get(&(r.index() as u8)).copied().unwrap_or(0)
        }
    }

    fn write(&mut self, r: Reg, v: i64) {
        // Architectural rule: writes to r0 are discarded.
        if !r.is_zero() {
            self.regs.insert(r.index() as u8, v);
        }
    }

    /// A digest of the architectural register file, for end-of-run
    /// state comparison against the production executor.
    pub fn reg_digest(&self) -> u64 {
        let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for i in 0..32u8 {
            let v = self.reg(Reg::new(i)) as u64;
            digest ^= v.wrapping_add(i as u64);
            digest = digest.wrapping_mul(0x1000_0000_01b3);
        }
        digest
    }

    /// Executes and retires exactly one instruction.
    pub fn step(&mut self) -> OracleInstr {
        let pc = self.pc;
        let op = *self
            .program
            .fetch(pc)
            .expect("validated programs never run out of code");
        let mut taken = false;
        let mut mem_addr = None;
        // Default successor: the next sequential instruction.
        let mut next_pc = pc.next();

        match op {
            Op::Add { rd, rs1, rs2 } => {
                self.write(rd, self.reg(rs1).wrapping_add(self.reg(rs2)));
            }
            Op::Sub { rd, rs1, rs2 } => {
                self.write(rd, self.reg(rs1).wrapping_sub(self.reg(rs2)));
            }
            Op::And { rd, rs1, rs2 } => {
                self.write(rd, self.reg(rs1) & self.reg(rs2));
            }
            Op::Or { rd, rs1, rs2 } => {
                self.write(rd, self.reg(rs1) | self.reg(rs2));
            }
            Op::Xor { rd, rs1, rs2 } => {
                self.write(rd, self.reg(rs1) ^ self.reg(rs2));
            }
            Op::Shl { rd, rs1, shamt } => {
                // Shifts are defined on the unsigned bit pattern with
                // a wrapping (mod-64) shift amount.
                self.write(rd, (self.reg(rs1) as u64).wrapping_shl(shamt as u32) as i64);
            }
            Op::Shr { rd, rs1, shamt } => {
                self.write(rd, ((self.reg(rs1) as u64) >> (shamt as u32)) as i64);
            }
            Op::AddImm { rd, rs1, imm } => {
                self.write(rd, self.reg(rs1).wrapping_add(imm as i64));
            }
            Op::LoadImm { rd, imm } => {
                self.write(rd, imm as i64);
            }
            Op::Mul { rd, rs1, rs2 } => {
                self.write(rd, self.reg(rs1).wrapping_mul(self.reg(rs2)));
            }
            Op::Div { rd, rs1, rs2 } => {
                // Division by zero yields zero (no trap).
                let d = self.reg(rs2);
                let v = if d == 0 {
                    0
                } else {
                    self.reg(rs1).wrapping_div(d)
                };
                self.write(rd, v);
            }
            Op::Load { rd, base, offset } => {
                let ea = (self.reg(base).wrapping_add(offset as i64) as u64) & DATA_FOOTPRINT_MASK;
                mem_addr = Some(ea);
                self.write(rd, load_value(ea));
            }
            Op::Store { base, offset, .. } => {
                let ea = (self.reg(base).wrapping_add(offset as i64) as u64) & DATA_FOOTPRINT_MASK;
                mem_addr = Some(ea);
                // Stores have no architectural effect beyond their
                // address (memory dataflow is not modelled).
            }
            Op::Branch { target, .. } => {
                let model = self
                    .program
                    .branch_model(pc)
                    .expect("validated programs model every branch");
                let state = self
                    .branch_states
                    .entry(pc.word())
                    .or_insert_with(|| OutcomeState::new(model));
                taken = state.next_outcome(model);
                if taken {
                    next_pc = target;
                }
            }
            Op::Jump { target } => {
                next_pc = target;
            }
            Op::Call { target } => {
                let return_addr = pc.next();
                self.call_stack.push(return_addr);
                self.write(tpc_isa::LINK, return_addr.word() as i64);
                next_pc = target;
            }
            Op::Return => {
                next_pc = match self.call_stack.pop() {
                    Some(return_addr) => return_addr,
                    // Unbalanced return restarts the program (only
                    // reachable in hand-written code).
                    None => self.program.entry(),
                };
            }
            Op::IndirectJump { .. } => {
                let model = self
                    .program
                    .indirect_model(pc)
                    .expect("validated programs model every indirect jump");
                let rng = self
                    .indirect_rngs
                    .entry(pc.word())
                    .or_insert_with(|| XorShift64::new(model.seed()));
                next_pc = model.select(rng);
            }
            Op::Halt => {
                // Halt restarts at the entry with a cleared call
                // stack; registers and model states persist (a
                // long-running program re-entering its outer loop).
                self.call_stack.clear();
                self.completions += 1;
                next_pc = self.program.entry();
            }
            Op::Nop => {}
        }

        self.pc = next_pc;
        self.retired += 1;
        OracleInstr {
            pc,
            op,
            taken,
            next_pc,
            mem_addr,
        }
    }
}

impl Iterator for Oracle<'_> {
    type Item = OracleInstr;

    fn next(&mut self) -> Option<OracleInstr> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, ProgramBuilder};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn counted_loop(trip: u32) -> Program {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddImm {
            rd: r(1),
            rs1: Reg::ZERO,
            imm: trip as i32,
        });
        let top = b.here();
        b.push(Op::AddImm {
            rd: r(1),
            rs1: r(1),
            imm: -1,
        });
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: r(1),
                rs2: Reg::ZERO,
                target: top,
            },
            OutcomeModel::Loop { trip },
        );
        b.push(Op::Halt);
        b.build().unwrap()
    }

    #[test]
    fn loop_halts_after_expected_retirements() {
        let p = counted_loop(5);
        let mut o = Oracle::new(&p);
        let halted_at = (1..=100)
            .find(|_| o.step().op == Op::Halt)
            .expect("halts within 100");
        assert_eq!(halted_at, 12); // init + 5*(addi+bne) + halt
        assert_eq!(o.completions(), 1);
    }

    #[test]
    fn zero_register_ignores_writes() {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddImm {
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 42,
        });
        b.push(Op::Halt);
        let p = b.build().unwrap();
        let mut o = Oracle::new(&p);
        o.step();
        assert_eq!(o.reg(Reg::ZERO), 0);
    }

    #[test]
    fn call_pushes_link_and_return_pops() {
        let mut b = ProgramBuilder::new();
        let call_at = b.push(Op::Nop);
        b.push(Op::Halt);
        let f = b.here();
        b.push(Op::Return);
        b.patch(call_at, Op::Call { target: f });
        let p = b.build().unwrap();
        let mut o = Oracle::new(&p);
        let call = o.step();
        assert_eq!(call.next_pc, f);
        assert_eq!(o.reg(tpc_isa::LINK), 1);
        let ret = o.step();
        assert_eq!(ret.next_pc, call_at.next());
    }

    #[test]
    fn deterministic_streams() {
        let p = counted_loop(7);
        let a: Vec<_> = Oracle::new(&p).take(300).collect();
        let b: Vec<_> = Oracle::new(&p).take(300).collect();
        assert_eq!(a, b);
    }
}
