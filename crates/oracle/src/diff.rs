//! The differential runner.
//!
//! Executes every simulator configuration over a program and asserts
//! that each one's retired-instruction stream is *identical* to the
//! stream the golden-model [`Oracle`] produces — the fundamental
//! correctness property of a trace-cache frontend: no matter how
//! traces are built, cached, preconstructed, or promoted, the machine
//! must retire exactly the architectural instruction sequence.
//!
//! Alongside the stream comparison the runner re-checks the
//! conservation invariants after every chunk (fetch accounting,
//! buffer occupancy ≤ capacity, start-stack depth ≤ 16+4) and
//! verifies that every retired instruction exists verbatim in the
//! static code at its claimed address.
//!
//! Two static-analysis gates bracket every run. Before simulating,
//! the program is linted ([`tpc_analysis::lint`]) and rejected on
//! structural errors — a malformed fuzzer input would make any
//! divergence report meaningless. During simulation, the engine's
//! activity log is drained each chunk and checked against the
//! program's [`StaticEnumeration`]: every start point the dispatch
//! stage pushes must name a real call-return or loop-exit construct,
//! and every trace a constructor emits must be statically
//! constructible from its start. These conformance checks run in both
//! the fault-free and fault-injected suites (faults drop or delay
//! preconstruction work but never fabricate it).

use crate::interp::Oracle;
use tpc_analysis::StaticEnumeration;
use tpc_core::FaultPlan;
use tpc_exec::{Frontend, FrontendSource};
use tpc_isa::Program;
use tpc_processor::{SimConfig, SimStats, Simulator};

/// How many instructions each comparison chunk covers. Chunking keeps
/// memory bounded on long runs and localises invariant failures.
const CHUNK: u64 = 4096;

/// A named simulator configuration under differential test.
#[derive(Debug, Clone)]
pub struct NamedConfig {
    /// Short human-readable name, used in divergence reports.
    pub name: &'static str,
    /// The configuration.
    pub config: SimConfig,
}

/// The standard configuration matrix: every frontend the experiments
/// exercise, sized small so fuzzed programs actually stress
/// replacement, eviction, and the region-priority rules.
pub fn standard_configs() -> Vec<NamedConfig> {
    vec![
        NamedConfig {
            name: "baseline",
            config: SimConfig::baseline(64),
        },
        NamedConfig {
            name: "precon",
            config: SimConfig::with_precon(64, 64),
        },
        NamedConfig {
            name: "combined",
            config: SimConfig::with_precon(64, 64).with_preprocess(),
        },
        NamedConfig {
            name: "unified",
            config: SimConfig::unified(64, 1, 256),
        },
    ]
}

/// A single divergence between a simulator configuration and the
/// oracle (or a violated invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which configuration diverged.
    pub config: &'static str,
    /// Zero-based index into the retired-instruction stream (or the
    /// retirement count at which an invariant failed).
    pub index: u64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] at retired instruction {}: {}",
            self.config, self.index, self.detail
        )
    }
}

/// Summary of a clean differential run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiffReport {
    /// Configurations exercised.
    pub configs: usize,
    /// Instructions compared per configuration.
    pub instructions: u64,
    /// Instructions compared in the executor cross-check.
    pub executor_checked: u64,
}

/// Cross-checks the source's frontend against the oracle, then runs
/// every configuration in `configs` for at least `instructions`
/// retirements each, comparing retirement streams chunk by chunk.
///
/// Generic over the [`FrontendSource`]: a synthetic [`Program`] runs
/// through the architectural executor, a loaded
/// [`AsmProgram`](tpc_exec::AsmProgram) through the `"asm"` frontend,
/// and so on — statically dispatched, one compiled pipeline per
/// frontend kind.
///
/// Returns the first divergence found, or a summary when everything
/// agrees.
pub fn run_differential<S: FrontendSource>(
    source: &S,
    configs: &[NamedConfig],
    instructions: u64,
) -> Result<DiffReport, Divergence> {
    lint_gate(source.code())?;
    check_frontend(source, instructions)?;

    let enumeration = StaticEnumeration::build(source.code());
    for nc in configs {
        check_config(source, nc, instructions, &enumeration)?;
    }

    Ok(DiffReport {
        configs: configs.len(),
        instructions,
        executor_checked: instructions,
    })
}

/// Summary of a clean fault-injected differential run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultedDiffReport {
    /// Configurations exercised.
    pub configs: usize,
    /// Instructions compared per configuration.
    pub instructions: u64,
    /// Faults injected, summed across configurations.
    pub faults_injected: u64,
    /// Faults that landed on live state, summed across configurations.
    pub faults_landed: u64,
}

/// Runs every configuration with `plan` attached and asserts the
/// retirement stream still matches the golden model exactly — the
/// correctness-neutrality property: preconstruction is hint hardware,
/// so an adversarial fault schedule over its every mechanism may move
/// hit rates and IPC but can never change what retires.
///
/// The frontend cross-check is skipped (faults cannot reach it); the
/// per-chunk invariant checks still run, so a fault that corrupted a
/// structure into an illegal state is caught even if retirement
/// happened to survive.
pub fn run_differential_faulted<S: FrontendSource>(
    source: &S,
    configs: &[NamedConfig],
    instructions: u64,
    plan: FaultPlan,
) -> Result<FaultedDiffReport, Divergence> {
    let mut report = FaultedDiffReport {
        configs: configs.len(),
        instructions,
        ..FaultedDiffReport::default()
    };
    lint_gate(source.code())?;
    let enumeration = StaticEnumeration::build(source.code());
    for nc in configs {
        let faulted = NamedConfig {
            name: nc.name,
            config: nc.config.clone().with_faults(plan),
        };
        let stats = check_config(source, &faulted, instructions, &enumeration)?;
        report.faults_injected += stats.faults.injected;
        report.faults_landed += stats.faults.landed;
    }
    Ok(report)
}

/// Rejects structurally malformed programs before simulation: lint
/// *errors* (a backward branch that is not a loop latch, an indirect
/// jump without targets) make any downstream divergence report
/// meaningless, so they are divergences in their own right.
fn lint_gate(program: &Program) -> Result<(), Divergence> {
    let cfg = tpc_analysis::Cfg::build(program);
    let lints = tpc_analysis::lint(program, &cfg);
    if tpc_analysis::has_errors(&lints) {
        let detail = lints
            .iter()
            .filter(|l| l.level() == tpc_analysis::LintLevel::Error)
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        return Err(Divergence {
            config: "lint",
            index: 0,
            detail,
        });
    }
    Ok(())
}

/// Step-by-step comparison of the source's production [`Frontend`]
/// (e.g. the [`tpc_exec::Executor`]) against the oracle: pc, opcode,
/// branch direction, successor, and effective memory address must all
/// agree at every instruction.
fn check_frontend<S: FrontendSource>(source: &S, instructions: u64) -> Result<(), Divergence> {
    let mut oracle = Oracle::new(source.code());
    let mut fe = source.frontend();
    for i in 0..instructions {
        let want = oracle.step();
        let got = fe.next_retired();
        if got.pc != want.pc
            || got.op != want.op
            || got.taken != want.taken
            || got.next_pc != want.next_pc
            || got.mem_addr != want.mem_addr
        {
            return Err(Divergence {
                config: "executor",
                index: i,
                detail: format!("oracle {want:?} but {} frontend {got:?}", source.id()),
            });
        }
    }
    Ok(())
}

/// Runs one simulator configuration and compares its retirement
/// stream against a fresh oracle advanced in lockstep. Returns the
/// final statistics so faulted runs can report injection counts.
fn check_config<S: FrontendSource>(
    source: &S,
    nc: &NamedConfig,
    instructions: u64,
    enumeration: &StaticEnumeration,
) -> Result<SimStats, Divergence> {
    let program = source.code();
    let mut config = nc.config.clone();
    config.record_retirement = true;
    config.engine.record_activity = true;
    let mut sim = Simulator::with_frontend(source.frontend(), config);
    let mut oracle = Oracle::new(program);
    let mut compared: u64 = 0;

    while compared < instructions {
        sim.run(CHUNK.min(instructions - compared));
        let retired = sim.take_retirement();
        if retired.is_empty() {
            return Err(Divergence {
                config: nc.name,
                index: compared,
                detail: "simulator made progress but retired nothing".into(),
            });
        }
        for r in retired {
            let want = oracle.step();
            // Conservation: the retired instruction must exist
            // verbatim in the static code at its claimed address —
            // a trace-cache hit can never supply fabricated
            // instructions.
            match program.fetch(r.pc) {
                Some(&op) if op == want.op => {}
                other => {
                    return Err(Divergence {
                        config: nc.name,
                        index: compared,
                        detail: format!(
                            "retired pc {} does not match static code ({other:?})",
                            r.pc
                        ),
                    });
                }
            }
            if r.pc != want.pc || r.taken != want.taken {
                return Err(Divergence {
                    config: nc.name,
                    index: compared,
                    detail: format!(
                        "oracle retired pc={} taken={} but simulator pc={} taken={}",
                        want.pc, want.taken, r.pc, r.taken
                    ),
                });
            }
            compared += 1;
        }
        // Conformance: every start point pushed and every trace
        // emitted this chunk must be in the static enumeration.
        for activity in sim.take_engine_activity() {
            if let Err(e) = enumeration.check_activity(&activity) {
                return Err(Divergence {
                    config: nc.name,
                    index: compared,
                    detail: format!("engine conformance violated: {e}"),
                });
            }
        }
        if let Err(e) = sim.check_invariants() {
            return Err(Divergence {
                config: nc.name,
                index: compared,
                detail: format!("invariant violated: {e}"),
            });
        }
    }
    Ok(sim.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpc_isa::model::OutcomeModel;
    use tpc_isa::{BranchCond, Op, ProgramBuilder, Reg};

    fn tiny_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.here();
        b.push(Op::AddImm {
            rd: Reg::new(1),
            rs1: Reg::new(1),
            imm: 1,
        });
        b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::ZERO,
                target: top,
            },
            OutcomeModel::Loop { trip: 3 },
        );
        b.push(Op::Halt);
        b.build().unwrap()
    }

    #[test]
    fn standard_matrix_has_all_frontends() {
        let names: Vec<_> = standard_configs().iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["baseline", "precon", "combined", "unified"]);
    }

    #[test]
    fn tiny_loop_matches_everywhere() {
        let p = tiny_loop();
        let report = run_differential(&p, &standard_configs(), 2_000).unwrap();
        assert_eq!(report.configs, 4);
        assert!(report.instructions >= 2_000);
    }

    #[test]
    fn asm_source_matches_everywhere() {
        // The second frontend through the same generic pipeline: a
        // hand-written program, differentially checked clean and
        // under faults.
        let src = "main:\n    li r1, 4\n\
                   top:\n    addi r1, r1, -1\n\
                   \x20   st r1, 8(r1)\n\
                   \x20   bne r1, r0, top @loop(4)\n\
                   \x20   halt\n";
        let asm = tpc_exec::AsmProgram::from_source("loop", src).unwrap();
        let report = run_differential(&asm, &standard_configs(), 2_000).unwrap();
        assert_eq!(report.configs, 4);
        let plan = FaultPlan::all(7, 100);
        let faulted = run_differential_faulted(&asm, &standard_configs(), 1_000, plan).unwrap();
        assert!(faulted.faults_injected > 0);
    }

    #[test]
    fn tiny_loop_matches_under_heavy_faults() {
        let p = tiny_loop();
        let plan = FaultPlan::all(0xD15EA5E, 200);
        let report = run_differential_faulted(&p, &standard_configs(), 2_000, plan).unwrap();
        assert_eq!(report.configs, 4);
        assert!(report.faults_injected > 0, "200‰ per kind must inject");
        assert!(report.faults_landed > 0, "some must land on live state");
    }

    #[test]
    fn zero_intensity_faulted_run_matches_clean_run() {
        let p = tiny_loop();
        let plan = FaultPlan::all(1, 0);
        let report = run_differential_faulted(&p, &standard_configs(), 1_000, plan).unwrap();
        assert_eq!(report.faults_injected, 0);
    }
}
