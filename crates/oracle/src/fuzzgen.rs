//! Structure-aware program fuzzer.
//!
//! Generates random — but always *valid* — [`Program`]s from a small
//! `(seed, size, features)` triple. Generation is structure-aware:
//! instead of drawing raw opcodes, it composes the control-flow
//! shapes the preconstruction mechanisms actually key on — counted
//! loops (back edges with known trip counts), weakly and strongly
//! biased diamonds, correlated pattern branches, call trees over an
//! acyclic function DAG, and indirect switches — so a short fuzz run
//! exercises trace termination rules, the alignment heuristic,
//! region-priority replacement, and the start-point stack far more
//! densely than uniform random code would.
//!
//! A failing scenario shrinks greedily (drop feature classes, then
//! halve the size) and prints as a one-line reproducible command.

use tpc_isa::model::{IndirectModel, OutcomeModel, XorShift64};
use tpc_isa::{Addr, BranchCond, Op, Program, ProgramBuilder, Reg};

/// Feature bit: counted loops (backward branches with `Loop` models).
pub const FEAT_LOOPS: u32 = 1;
/// Feature bit: forward-branch diamonds with biased outcome models.
pub const FEAT_DIAMONDS: u32 = 1 << 1;
/// Feature bit: calls into an acyclic DAG of helper functions.
pub const FEAT_CALLS: u32 = 1 << 2;
/// Feature bit: indirect jumps over multi-arm switch tables.
pub const FEAT_INDIRECT: u32 = 1 << 3;
/// Feature bit: correlated (fixed-pattern) branches.
pub const FEAT_PATTERNS: u32 = 1 << 4;
/// All feature bits.
pub const FEAT_ALL: u32 = FEAT_LOOPS | FEAT_DIAMONDS | FEAT_CALLS | FEAT_INDIRECT | FEAT_PATTERNS;

/// A reproducible fuzz scenario: everything needed to regenerate one
/// program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// PRNG seed.
    pub seed: u64,
    /// Approximate program size in instructions.
    pub size: u32,
    /// Enabled construct classes ([`FEAT_LOOPS`] …).
    pub features: u32,
}

impl Scenario {
    /// The default scenario for `seed`: ~800 instructions, every
    /// construct class enabled.
    pub fn new(seed: u64) -> Self {
        Scenario {
            seed,
            size: 800,
            features: FEAT_ALL,
        }
    }

    /// The command line that reproduces this exact scenario.
    pub fn command(&self) -> String {
        format!(
            "cargo run -p tpc-oracle --bin fuzz_sim -- --seed {} --size {} --features 0x{:x} --iters 1",
            self.seed, self.size, self.features
        )
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scenario {{ seed: {}, size: {}, features: 0x{:x} }}",
            self.seed, self.size, self.features
        )
    }
}

/// Generates the program a scenario describes. Total function:
/// the same scenario always yields the same program, and every
/// scenario yields a program that passes [`ProgramBuilder::build`]
/// validation.
pub fn generate(s: &Scenario) -> Program {
    let mut g = Gen {
        b: ProgramBuilder::new(),
        rng: XorShift64::new(s.seed ^ (s.size as u64) << 32 ^ s.features as u64),
        features: s.features,
        funcs: Vec::new(),
    };

    // Helper functions first (leaf-first: calls only ever target
    // already-emitted entries, so the call graph is acyclic and the
    // architectural call depth stays bounded).
    let helpers = if s.features & FEAT_CALLS != 0 {
        g.rng.next_in(1, 4)
    } else {
        0
    };
    let budget = (s.size / (helpers + 1)).max(8);
    for i in 0..helpers {
        let entry = g.emit_body(budget, false);
        g.b.record_function(format!("f{i}"), entry);
        g.funcs.push(entry);
    }

    let main = g.emit_body(budget, true);
    g.b.record_function("main", main);
    g.b.set_entry(main);
    g.b.build()
        .expect("generator must only emit valid programs")
}

struct Gen {
    b: ProgramBuilder,
    rng: XorShift64,
    features: u32,
    /// Entries of already-emitted helper functions.
    funcs: Vec<Addr>,
}

impl Gen {
    /// Emits one function body of roughly `budget` instructions,
    /// terminated by `halt` (main) or `return` (helpers); returns its
    /// entry address.
    fn emit_body(&mut self, budget: u32, is_main: bool) -> Addr {
        let entry = self.b.here();
        let mut emitted = 0u32;
        while emitted < budget {
            emitted += self.emit_construct();
        }
        self.b.push(if is_main { Op::Halt } else { Op::Return });
        entry
    }

    /// Emits one randomly chosen enabled construct; returns the
    /// number of instructions it occupied.
    fn emit_construct(&mut self) -> u32 {
        // Each construct forks its own PRNG stream so that inserting
        // or dropping one construct does not reshuffle every later
        // one — this is what makes shrinking converge.
        let mut rng = self.rng.fork();
        let mut choices: Vec<u8> = vec![0]; // straight-line ALU always available
        if self.features & FEAT_LOOPS != 0 {
            choices.push(1);
        }
        if self.features & FEAT_DIAMONDS != 0 {
            choices.push(2);
        }
        if self.features & FEAT_CALLS != 0 && !self.funcs.is_empty() {
            choices.push(3);
        }
        if self.features & FEAT_INDIRECT != 0 {
            choices.push(4);
        }
        if self.features & FEAT_PATTERNS != 0 {
            choices.push(5);
        }
        let pick = choices[rng.next_below(choices.len() as u32) as usize];
        match pick {
            1 => self.emit_loop(&mut rng),
            2 => {
                let model = biased_model(&mut rng);
                self.emit_diamond(&mut rng, model)
            }
            3 => self.emit_call(&mut rng),
            4 => self.emit_switch(&mut rng),
            5 => {
                let len = rng.next_in(2, 8) as u8;
                let bits = rng.next_below(1 << len);
                self.emit_diamond(&mut rng, OutcomeModel::Pattern { bits, len })
            }
            _ => {
                let n = rng.next_in(1, 6);
                self.emit_alu(&mut rng, n)
            }
        }
    }

    /// A block of `n` random dataflow instructions.
    fn emit_alu(&mut self, rng: &mut XorShift64, n: u32) -> u32 {
        for _ in 0..n {
            let op = random_alu(rng);
            self.b.push(op);
        }
        n
    }

    /// A counted loop: body, then a backward branch with a `Loop`
    /// model. Exercises back-edge detection, the mod-4 alignment
    /// heuristic, and `LoopExit` start points.
    fn emit_loop(&mut self, rng: &mut XorShift64) -> u32 {
        let top = self.b.here();
        let n = rng.next_in(1, 10);
        let body = self.emit_alu(rng, n);
        self.b.push_branch(
            Op::Branch {
                cond: BranchCond::Ne,
                rs1: random_reg(rng),
                rs2: Reg::ZERO,
                target: top,
            },
            OutcomeModel::Loop {
                trip: rng.next_in(1, 8),
            },
        );
        body + 1
    }

    /// An if/else diamond under the given outcome model. Forward
    /// targets are emitted as placeholders and patched once known.
    fn emit_diamond(&mut self, rng: &mut XorShift64, model: OutcomeModel) -> u32 {
        let branch_at = self.b.push_branch(
            Op::Branch {
                cond: BranchCond::Eq,
                rs1: random_reg(rng),
                rs2: random_reg(rng),
                target: Addr::ZERO, // patched below
            },
            model,
        );
        let n = rng.next_in(1, 5);
        let not_taken = self.emit_alu(rng, n);
        let skip_at = self.b.push(Op::Jump { target: Addr::ZERO }); // patched below
        let taken_entry = self.b.here();
        let n = rng.next_in(1, 5);
        let taken = self.emit_alu(rng, n);
        let join = self.b.here();
        self.b.patch(
            branch_at,
            Op::Branch {
                cond: BranchCond::Eq,
                rs1: random_reg(rng),
                rs2: random_reg(rng),
                target: taken_entry,
            },
        );
        self.b.patch(skip_at, Op::Jump { target: join });
        not_taken + taken + 2
    }

    /// A call to a random already-emitted helper (acyclic by
    /// construction). Exercises `CallReturn` start points and
    /// trace termination at returns.
    fn emit_call(&mut self, rng: &mut XorShift64) -> u32 {
        let target = self.funcs[rng.next_below(self.funcs.len() as u32) as usize];
        self.b.push(Op::Call { target });
        1
    }

    /// A multi-arm switch: an indirect jump whose model is fixed up
    /// once the arm addresses are known. Exercises indirect-jump
    /// trace termination.
    fn emit_switch(&mut self, rng: &mut XorShift64) -> u32 {
        let arms = rng.next_in(2, 4);
        let jump_at = self.b.push_indirect(
            Op::IndirectJump {
                rs1: random_reg(rng),
            },
            // Placeholder; replaced below once arm entries exist.
            IndirectModel::uniform(vec![Addr::ZERO], 1),
        );
        let mut entries = Vec::new();
        let mut exits = Vec::new();
        let mut cost = 1;
        for _ in 0..arms {
            entries.push(self.b.here());
            let n = rng.next_in(1, 4);
            cost += self.emit_alu(rng, n);
            exits.push(self.b.push(Op::Jump { target: Addr::ZERO })); // patched below
            cost += 1;
        }
        let join = self.b.here();
        for e in exits {
            self.b.patch(e, Op::Jump { target: join });
        }
        self.b
            .set_indirect_model(jump_at, IndirectModel::uniform(entries, rng.next_u64()));
        cost
    }
}

/// A weakly or strongly biased branch model (the mix DESIGN.md's
/// constructor forks on: weak branches fork both paths, strong
/// branches follow the bias).
fn biased_model(rng: &mut XorShift64) -> OutcomeModel {
    match rng.next_below(4) {
        0 => OutcomeModel::AlwaysTaken,
        1 => OutcomeModel::NeverTaken,
        _ => OutcomeModel::Biased {
            num: rng.next_in(1, 9),
            denom: 10,
            seed: rng.next_u64(),
        },
    }
}

/// A register in `r1..=r28` (leaves `r0`, `SP`, and `LINK` alone).
fn random_reg(rng: &mut XorShift64) -> Reg {
    Reg::new(rng.next_in(1, 28) as u8)
}

/// One random dataflow instruction.
fn random_alu(rng: &mut XorShift64) -> Op {
    let rd = random_reg(rng);
    let rs1 = random_reg(rng);
    let rs2 = random_reg(rng);
    match rng.next_below(10) {
        0 => Op::Add { rd, rs1, rs2 },
        1 => Op::Sub { rd, rs1, rs2 },
        2 => Op::Xor { rd, rs1, rs2 },
        3 => Op::AddImm {
            rd,
            rs1,
            imm: rng.next_in(0, 200) as i32 - 100,
        },
        4 => Op::LoadImm {
            rd,
            imm: rng.next_in(0, 2000) as i32 - 1000,
        },
        5 => Op::Mul { rd, rs1, rs2 },
        6 => Op::Div { rd, rs1, rs2 },
        7 => Op::Load {
            rd,
            base: rs1,
            offset: rng.next_in(0, 256) as i32 - 128,
        },
        8 => Op::Store {
            src: rs2,
            base: rs1,
            offset: rng.next_in(0, 256) as i32 - 128,
        },
        _ => Op::Shl {
            rd,
            rs1,
            shamt: rng.next_below(32) as u8,
        },
    }
}

/// Greedily shrinks a failing scenario: first drops construct
/// classes, then halves the program size, repeating until no single
/// reduction still fails. `still_fails` must return `true` when the
/// candidate scenario reproduces the failure.
pub fn shrink<F: FnMut(&Scenario) -> bool>(failing: Scenario, mut still_fails: F) -> Scenario {
    let mut cur = failing;
    loop {
        let mut improved = false;
        for bit in [
            FEAT_PATTERNS,
            FEAT_INDIRECT,
            FEAT_CALLS,
            FEAT_DIAMONDS,
            FEAT_LOOPS,
        ] {
            if cur.features & bit != 0 {
                let cand = Scenario {
                    features: cur.features & !bit,
                    ..cur
                };
                if still_fails(&cand) {
                    cur = cand;
                    improved = true;
                }
            }
        }
        while cur.size > 16 {
            let cand = Scenario {
                size: cur.size / 2,
                ..cur
            };
            if !still_fails(&cand) {
                break;
            }
            cur = cand;
            improved = true;
        }
        if !improved {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_is_valid_and_deterministic() {
        for seed in 0..50 {
            let s = Scenario::new(seed);
            let a = generate(&s);
            let b = generate(&s);
            assert_eq!(a.code(), b.code(), "seed {seed} not deterministic");
            assert!(a.len() >= 8);
        }
    }

    #[test]
    fn feature_subsets_are_valid() {
        for features in 0..=FEAT_ALL {
            let s = Scenario {
                seed: 7,
                size: 200,
                features,
            };
            let p = generate(&s);
            assert!(!p.is_empty(), "features 0x{features:x}");
        }
    }

    #[test]
    fn features_actually_appear() {
        let p = generate(&Scenario {
            seed: 3,
            size: 2000,
            features: FEAT_ALL,
        });
        let has = |f: fn(&Op) -> bool| p.code().iter().any(f);
        assert!(has(|o| matches!(o, Op::Branch { .. })));
        assert!(has(|o| matches!(o, Op::Call { .. })));
        assert!(has(|o| matches!(o, Op::IndirectJump { .. })));
        assert!(has(|o| matches!(o, Op::Return)));
        assert!(p.branch_count() > 0);
    }

    #[test]
    fn shrink_converges_to_minimal_failing() {
        // A synthetic failure: "fails whenever loops are enabled and
        // size >= 100". Shrinking should strip everything else.
        let start = Scenario {
            seed: 1,
            size: 1600,
            features: FEAT_ALL,
        };
        let shrunk = shrink(start, |s| s.features & FEAT_LOOPS != 0 && s.size >= 100);
        assert_eq!(shrunk.features, FEAT_LOOPS);
        assert!((100..200).contains(&shrunk.size), "size {}", shrunk.size);
    }

    #[test]
    fn command_round_trips_the_triple() {
        let s = Scenario {
            seed: 42,
            size: 300,
            features: 0x1b,
        };
        let cmd = s.command();
        assert!(cmd.contains("--seed 42"));
        assert!(cmd.contains("--size 300"));
        assert!(cmd.contains("--features 0x1b"));
    }
}
