//! # tpc-oracle — correctness subsystem
//!
//! Three pieces that together form the repository's differential
//! testing harness:
//!
//! * [`interp`] — a golden-model reference interpreter: minimal,
//!   single-path, in-order, written for obviousness over speed;
//! * [`diff`] — the differential runner, which executes every
//!   simulator configuration against the oracle and asserts
//!   retirement-stream equivalence plus the structural conservation
//!   invariants from DESIGN.md;
//! * [`fuzzgen`] — a seeded structure-aware program fuzzer with
//!   greedy shrinking, so divergences arrive as a one-line
//!   reproducible command over a small program.
//!
//! The `cargo test`-gated smoke suite lives in `tests/differential.rs`;
//! long runs use the `fuzz_sim` binary (`--budget-ms` for wall-clock
//! budgets, `--iters` for a fixed count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod fuzzgen;
pub mod interp;

pub use diff::{
    run_differential, run_differential_faulted, standard_configs, DiffReport, Divergence,
    FaultedDiffReport, NamedConfig,
};
pub use fuzzgen::{generate, shrink, Scenario, FEAT_ALL};
pub use interp::{Oracle, OracleInstr};

use tpc_core::FaultPlan;

/// Generates the scenario's program and runs the full differential
/// matrix over it for at least `instructions` retirements per
/// configuration.
pub fn check_scenario(s: &Scenario, instructions: u64) -> Result<DiffReport, Divergence> {
    let program = generate(s);
    run_differential(&program, &standard_configs(), instructions)
}

/// The fault plan a fuzzing scenario implies at a given intensity:
/// all kinds enabled, seeded from the scenario seed so the schedule
/// is part of the one-line repro.
pub fn scenario_fault_plan(s: &Scenario, per_mille: u32) -> FaultPlan {
    FaultPlan::all(s.seed ^ 0x5EED_FA17, per_mille)
}

/// Generates the scenario's program and runs the fault-injected
/// differential matrix over it: every configuration must retire the
/// oracle's exact stream under the scenario-derived fault schedule.
pub fn check_scenario_faulted(
    s: &Scenario,
    instructions: u64,
    per_mille: u32,
) -> Result<FaultedDiffReport, Divergence> {
    let program = generate(s);
    run_differential_faulted(
        &program,
        &standard_configs(),
        instructions,
        scenario_fault_plan(s, per_mille),
    )
}

/// Checks a scenario, and on failure greedily shrinks it; returns the
/// shrunk scenario together with its divergence.
pub fn check_and_shrink(
    s: &Scenario,
    instructions: u64,
) -> Result<DiffReport, (Scenario, Divergence)> {
    match check_scenario(s, instructions) {
        Ok(report) => Ok(report),
        Err(first) => {
            let shrunk = shrink(*s, |cand| check_scenario(cand, instructions).is_err());
            let div = check_scenario(&shrunk, instructions).err().unwrap_or(first);
            Err((shrunk, div))
        }
    }
}

/// Fault-injected variant of [`check_and_shrink`]: the shrink
/// predicate re-derives each candidate's fault plan from its own
/// seed, so the shrunk scenario reproduces with the same one-line
/// command.
pub fn check_and_shrink_faulted(
    s: &Scenario,
    instructions: u64,
    per_mille: u32,
) -> Result<FaultedDiffReport, (Scenario, Divergence)> {
    match check_scenario_faulted(s, instructions, per_mille) {
        Ok(report) => Ok(report),
        Err(first) => {
            let shrunk = shrink(*s, |cand| {
                check_scenario_faulted(cand, instructions, per_mille).is_err()
            });
            let div = check_scenario_faulted(&shrunk, instructions, per_mille)
                .err()
                .unwrap_or(first);
            Err((shrunk, div))
        }
    }
}
