//! # tpc-oracle — correctness subsystem
//!
//! Three pieces that together form the repository's differential
//! testing harness:
//!
//! * [`interp`] — a golden-model reference interpreter: minimal,
//!   single-path, in-order, written for obviousness over speed;
//! * [`diff`] — the differential runner, which executes every
//!   simulator configuration against the oracle and asserts
//!   retirement-stream equivalence plus the structural conservation
//!   invariants from DESIGN.md;
//! * [`fuzzgen`] — a seeded structure-aware program fuzzer with
//!   greedy shrinking, so divergences arrive as a one-line
//!   reproducible command over a small program.
//!
//! The `cargo test`-gated smoke suite lives in `tests/differential.rs`;
//! long runs use the `fuzz_sim` binary (`--budget-ms` for wall-clock
//! budgets, `--iters` for a fixed count).

pub mod diff;
pub mod fuzzgen;
pub mod interp;

pub use diff::{run_differential, standard_configs, DiffReport, Divergence, NamedConfig};
pub use fuzzgen::{generate, shrink, Scenario, FEAT_ALL};
pub use interp::{Oracle, OracleInstr};

/// Generates the scenario's program and runs the full differential
/// matrix over it for at least `instructions` retirements per
/// configuration.
pub fn check_scenario(s: &Scenario, instructions: u64) -> Result<DiffReport, Divergence> {
    let program = generate(s);
    run_differential(&program, &standard_configs(), instructions)
}

/// Checks a scenario, and on failure greedily shrinks it; returns the
/// shrunk scenario together with its divergence.
pub fn check_and_shrink(
    s: &Scenario,
    instructions: u64,
) -> Result<DiffReport, (Scenario, Divergence)> {
    match check_scenario(s, instructions) {
        Ok(report) => Ok(report),
        Err(first) => {
            let shrunk = shrink(*s, |cand| check_scenario(cand, instructions).is_err());
            let div = check_scenario(&shrunk, instructions).err().unwrap_or(first);
            Err((shrunk, div))
        }
    }
}
