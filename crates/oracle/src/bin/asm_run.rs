//! Runs a `.asm` program through the full verification pipeline.
//!
//! Loads the file as an [`AsmProgram`], lints it, prints its static
//! CFG/enumeration summary, cross-checks the `"asm"` frontend against
//! the synthetic [`Executor`] frontend over the identical code, runs
//! the differential oracle over the standard configuration matrix,
//! and (unless `--faults 0`) repeats the matrix under fault
//! injection. Per-configuration IPC is reported from a measured
//! simulation window.
//!
//! ```text
//! asm_run <file.asm> [--instructions N] [--faults PERMILLE] [--seed N]
//! ```
//!
//! Exit codes: 0 = all checks clean, 1 = lint error or divergence,
//! 2 = usage or load error.

use tpc_analysis::{cfg_of, enumeration_of, lint_source, LintLevel};
use tpc_core::FaultPlan;
use tpc_exec::{AsmFrontend, AsmProgram, Executor, Frontend, FrontendSource};
use tpc_experiments::{simulate_source, RunParams};
use tpc_oracle::{run_differential, run_differential_faulted, standard_configs};

const USAGE: &str = "usage: asm_run <file.asm> [--instructions N] [--faults PERMILLE] [--seed N]";

struct Args {
    path: String,
    instructions: u64,
    faults_per_mille: u32,
    seed: u64,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut path = None;
    let mut args = Args {
        path: String::new(),
        instructions: 20_000,
        faults_per_mille: 40,
        seed: 1,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        if !flag.starts_with("--") {
            if path.replace(flag).is_some() {
                return Err("more than one input file".to_string());
            }
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parsed = |what: &str| format!("{flag}: cannot parse {value:?} as {what}");
        match flag.as_str() {
            "--instructions" => args.instructions = value.parse().map_err(|_| parsed("u64"))?,
            "--faults" => args.faults_per_mille = value.parse().map_err(|_| parsed("u32"))?,
            "--seed" => args.seed = value.parse().map_err(|_| parsed("u64"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    args.path = path.ok_or_else(|| "no input file".to_string())?;
    Ok(args)
}

/// Retires `count` instructions on the `"asm"` frontend and the
/// synthetic [`Executor`] frontend over the same code, asserting the
/// streams are identical — the two frontends may differ in identity,
/// never in architecture.
fn cross_check_frontends(asm: &AsmProgram, count: u64) -> Result<(), String> {
    let mut a: AsmFrontend<'_> = asm.frontend();
    let mut b: Executor<'_> = asm.program().frontend();
    for i in 0..count {
        let x = a.next_retired();
        let y = b.next_retired();
        if x != y {
            return Err(format!(
                "frontend mismatch at instruction {i}: {} retired {x:?}, {} retired {y:?}",
                asm.id(),
                asm.program().id(),
            ));
        }
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), (i32, String)> {
    let asm = AsmProgram::load(&args.path).map_err(|e| (2, e.to_string()))?;

    // Static report: lints, CFG shape, enumeration size.
    let lints = lint_source(&asm);
    for l in &lints {
        println!("{l}");
    }
    if lints.iter().any(|l| l.level() == LintLevel::Error) {
        return Err((1, format!("{}: lint errors, not simulating", asm.name())));
    }
    let summary = cfg_of(&asm).summary(asm.program());
    let closure = enumeration_of(&asm).closure_size();
    println!(
        "{}: {} instructions, {} blocks ({} reachable), {} loops, \
         {} call edges, {} indirect jumps, {} enumerated trace starts",
        asm.name(),
        summary.instructions,
        summary.blocks,
        summary.reachable_blocks,
        summary.natural_loops,
        summary.call_edges,
        summary.indirect_jumps,
        closure,
    );

    // The asm frontend and the synthetic executor frontend must
    // retire the same stream over the same code.
    cross_check_frontends(&asm, args.instructions).map_err(|e| (1, e))?;

    // Measured IPC per configuration (quick window).
    let params = RunParams::quick();
    for nc in standard_configs() {
        let stats = simulate_source(&asm, nc.config.clone(), params);
        println!(
            "{:10} IPC {:.3}  ({} retired)",
            nc.name,
            stats.ipc(),
            stats.retired_instructions
        );
    }

    // Differential oracle over the standard matrix, then again under
    // fault injection: retirement must match the golden model exactly
    // either way.
    let configs = standard_configs();
    let report = run_differential(&asm, &configs, args.instructions)
        .map_err(|d| (1, format!("{}: {d}", asm.name())))?;
    println!(
        "differential: {} configs x {} instructions clean",
        report.configs, report.instructions
    );
    if args.faults_per_mille > 0 {
        let plan = FaultPlan::all(args.seed ^ 0x5EED_FA17, args.faults_per_mille);
        let faulted = run_differential_faulted(&asm, &configs, args.instructions, plan)
            .map_err(|d| (1, format!("{} (faulted): {d}", asm.name())))?;
        println!(
            "faulted:      {} configs x {} instructions clean \
             ({} faults injected, {} landed)",
            faulted.configs, faulted.instructions, faulted.faults_injected, faulted.faults_landed
        );
    }
    Ok(())
}

fn main() {
    let args = parse_args(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("asm_run: {e}\n{USAGE}");
        std::process::exit(2);
    });
    if let Err((code, msg)) = run(&args) {
        eprintln!("asm_run: {msg}");
        std::process::exit(code);
    }
}
