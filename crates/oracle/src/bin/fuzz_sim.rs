//! Long-running differential fuzzer.
//!
//! Generates structure-aware random programs and differentially
//! checks every simulator configuration against the golden-model
//! oracle until an iteration count or wall-clock budget is exhausted.
//! On divergence the failing scenario is shrunk and printed as a
//! reproducible command, and the process exits non-zero.
//!
//! ```text
//! fuzz_sim [--seed N] [--iters N] [--budget-ms N]
//!          [--size N] [--features HEX] [--instrs N] [--jobs N]
//!          [--faults PERMILLE]
//! ```
//!
//! `--iters` and `--budget-ms` compose: the run stops at whichever
//! limit is reached first (default: 200 iterations, no time budget).
//!
//! `--faults N` additionally runs the *fault-injected* differential
//! on every program: all fault kinds enabled at N/1000 per-cycle
//! intensity, seeded from the scenario seed (so the printed repro
//! command reproduces the fault schedule too). The retirement stream
//! must still match the oracle exactly — this is the paper's
//! hint-hardware safety property under adversarial perturbation.
//!
//! Exit codes: 0 = all clean, 1 = divergence found, 2 = usage error.

use std::time::Instant;
use tpc_experiments::par_map;
use tpc_oracle::fuzzgen::FEAT_ALL;
use tpc_oracle::{
    check_and_shrink, check_and_shrink_faulted, check_scenario, check_scenario_faulted, Scenario,
};

const USAGE: &str = "usage: fuzz_sim [--seed N] [--iters N] [--budget-ms N] \
     [--size N] [--features HEX] [--instrs N] [--jobs N] [--faults PERMILLE]";

struct Args {
    seed: u64,
    iters: u64,
    budget_ms: Option<u64>,
    size: u32,
    features: u32,
    instrs: u64,
    jobs: usize,
    /// Fault-injection intensity in 1/1000ths per kind per cycle
    /// (0 = fault-free differential only).
    faults_per_mille: u32,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        iters: 200,
        budget_ms: None,
        size: 800,
        features: FEAT_ALL,
        instrs: 3_000,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        faults_per_mille: 0,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        if matches!(flag.as_str(), "--help" | "-h") {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parsed = |what: &str| format!("{flag}: cannot parse {value:?} as {what}");
        match flag.as_str() {
            "--seed" => args.seed = value.parse().map_err(|_| parsed("u64"))?,
            "--iters" => args.iters = value.parse().map_err(|_| parsed("u64"))?,
            "--budget-ms" => args.budget_ms = Some(value.parse().map_err(|_| parsed("u64"))?),
            "--size" => args.size = value.parse().map_err(|_| parsed("u32"))?,
            "--features" => {
                let v = value.trim_start_matches("0x");
                args.features = u32::from_str_radix(v, 16).map_err(|_| parsed("hex u32"))?;
            }
            "--instrs" => args.instrs = value.parse().map_err(|_| parsed("u64"))?,
            "--jobs" => {
                args.jobs = value.parse().map_err(|_| parsed("usize"))?;
                if args.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--faults" => {
                args.faults_per_mille = value.parse().map_err(|_| parsed("u32"))?;
                if args.faults_per_mille > 1000 {
                    return Err("--faults is in 1/1000ths; the maximum is 1000".into());
                }
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Checks one scenario: fault-free always, fault-injected when
/// enabled. Returns the failing scenario for the report phase.
fn check_one(s: &Scenario, instrs: u64, faults_per_mille: u32) -> Option<Scenario> {
    if check_scenario(s, instrs).is_err() {
        return Some(*s);
    }
    if faults_per_mille > 0 && check_scenario_faulted(s, instrs, faults_per_mille).is_err() {
        return Some(*s);
    }
    None
}

/// Shrinks and prints a divergence, then exits 1. Falls back to the
/// unshrunk scenario if the serial re-check cannot reproduce the
/// parallel failure (so the repro command is never lost).
fn report_divergence(first: &Scenario, args: &Args, checked: u64) -> ! {
    let faulted_repro = |s: &Scenario| {
        let mut cmd = s.command();
        if args.faults_per_mille > 0 {
            cmd.push_str(&format!(" --faults {}", args.faults_per_mille));
        }
        cmd
    };
    let (shrunk, detail) = match check_and_shrink(first, args.instrs) {
        Err((shrunk, div)) => (shrunk, div.to_string()),
        Ok(_) => match check_and_shrink_faulted(first, args.instrs, args.faults_per_mille.max(1)) {
            Err((shrunk, div)) => (shrunk, format!("{div} (under fault injection)")),
            Ok(_) => {
                // The parallel worker saw a failure the serial
                // re-check cannot reproduce — report the original
                // scenario rather than dying on an expect.
                eprintln!("DIVERGENCE after {checked} programs (not reproduced serially)");
                eprintln!("  first failing scenario: {first}");
                eprintln!("  reproduce: {}", faulted_repro(first));
                std::process::exit(1);
            }
        },
    };
    eprintln!("DIVERGENCE after {checked} programs");
    eprintln!("  {detail}");
    eprintln!("  shrunk to {shrunk}");
    eprintln!("  reproduce: {}", faulted_repro(&shrunk));
    std::process::exit(1);
}

fn main() {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("fuzz_sim: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let start = Instant::now();
    let batch = (args.jobs * 4).max(8) as u64;
    let mut checked: u64 = 0;

    while checked < args.iters {
        if let Some(ms) = args.budget_ms {
            if start.elapsed().as_millis() as u64 >= ms {
                break;
            }
        }
        let n = batch.min(args.iters - checked);
        let scenarios: Vec<Scenario> = (0..n)
            .map(|i| Scenario {
                seed: args.seed + checked + i,
                size: args.size,
                features: args.features,
            })
            .collect();
        let failures: Vec<Scenario> = par_map(&scenarios, args.jobs, |s| {
            check_one(s, args.instrs, args.faults_per_mille)
        })
        .into_iter()
        .flatten()
        .collect();

        if let Some(first) = failures.first() {
            report_divergence(first, &args, checked);
        }
        checked += n;
        if checked.is_multiple_of(batch * 8) || checked >= args.iters {
            println!(
                "fuzz_sim: {checked} programs clean ({} configs each, {} instrs{}) in {:.1}s",
                tpc_oracle::standard_configs().len(),
                args.instrs,
                if args.faults_per_mille > 0 {
                    format!(", faults {}‰", args.faults_per_mille)
                } else {
                    String::new()
                },
                start.elapsed().as_secs_f64()
            );
        }
    }

    println!(
        "fuzz_sim: PASS — {checked} programs, all configurations matched the oracle{} ({:.1}s)",
        if args.faults_per_mille > 0 {
            " (fault-free and fault-injected)"
        } else {
            ""
        },
        start.elapsed().as_secs_f64()
    );
}
