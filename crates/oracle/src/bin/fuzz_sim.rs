//! Long-running differential fuzzer.
//!
//! Generates structure-aware random programs and differentially
//! checks every simulator configuration against the golden-model
//! oracle until an iteration count or wall-clock budget is exhausted.
//! On divergence the failing scenario is shrunk and printed as a
//! reproducible command, and the process exits non-zero.
//!
//! ```text
//! fuzz_sim [--seed N] [--iters N] [--budget-ms N]
//!          [--size N] [--features HEX] [--instrs N] [--jobs N]
//! ```
//!
//! `--iters` and `--budget-ms` compose: the run stops at whichever
//! limit is reached first (default: 200 iterations, no time budget).

use std::time::Instant;
use tpc_experiments::par_map;
use tpc_oracle::fuzzgen::FEAT_ALL;
use tpc_oracle::{check_and_shrink, check_scenario, Scenario};

struct Args {
    seed: u64,
    iters: u64,
    budget_ms: Option<u64>,
    size: u32,
    features: u32,
    instrs: u64,
    jobs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        iters: 200,
        budget_ms: None,
        size: 800,
        features: FEAT_ALL,
        instrs: 3_000,
        jobs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--iters" => args.iters = value().parse().expect("--iters"),
            "--budget-ms" => args.budget_ms = Some(value().parse().expect("--budget-ms")),
            "--size" => args.size = value().parse().expect("--size"),
            "--features" => {
                let v = value();
                let v = v.trim_start_matches("0x");
                args.features = u32::from_str_radix(v, 16).expect("--features (hex)");
            }
            "--instrs" => args.instrs = value().parse().expect("--instrs"),
            "--jobs" => args.jobs = value().parse().expect("--jobs"),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_sim [--seed N] [--iters N] [--budget-ms N] \
                     [--size N] [--features HEX] [--instrs N] [--jobs N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag: {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let start = Instant::now();
    let batch = (args.jobs * 4).max(8) as u64;
    let mut checked: u64 = 0;

    while checked < args.iters {
        if let Some(ms) = args.budget_ms {
            if start.elapsed().as_millis() as u64 >= ms {
                break;
            }
        }
        let n = batch.min(args.iters - checked);
        let scenarios: Vec<Scenario> = (0..n)
            .map(|i| Scenario {
                seed: args.seed + checked + i,
                size: args.size,
                features: args.features,
            })
            .collect();
        let failures: Vec<Scenario> = par_map(&scenarios, args.jobs, |s| {
            check_scenario(s, args.instrs).err().map(|_| *s)
        })
        .into_iter()
        .flatten()
        .collect();

        if let Some(first) = failures.first() {
            // Re-check serially to shrink and report deterministically.
            let (shrunk, div) = check_and_shrink(first, args.instrs)
                .expect_err("parallel run found a failure; serial re-check must too");
            eprintln!("DIVERGENCE after {} programs", checked);
            eprintln!("  {div}");
            eprintln!("  shrunk to {shrunk}");
            eprintln!("  reproduce: {}", shrunk.command());
            std::process::exit(1);
        }
        checked += n;
        if checked % (batch * 8) == 0 || checked >= args.iters {
            println!(
                "fuzz_sim: {checked} programs clean ({} configs each, {} instrs) in {:.1}s",
                tpc_oracle::standard_configs().len(),
                args.instrs,
                start.elapsed().as_secs_f64()
            );
        }
    }

    println!(
        "fuzz_sim: PASS — {checked} programs, all configurations matched the oracle ({:.1}s)",
        start.elapsed().as_secs_f64()
    );
}
