//! Round-trip and differential coverage for the shipped `.asm`
//! examples and a seeded fuzz corpus.
//!
//! Two properties:
//!
//! * **fixed point** — assemble → disassemble → reassemble returns
//!   the identical [`Program`] for every shipped example (asm-origin
//!   programs carry nothing the text can't express), and any
//!   generated program reaches a fixed point after one normalization
//!   round (explicit seeds, clamped models, synthetic labels);
//! * **frontend equivalence** — a normalized program retires the
//!   exact same stream as its original, and every shipped example
//!   survives the differential oracle and fault-neutrality matrix.

use std::fs;
use std::path::PathBuf;

use tpc_core::FaultPlan;
use tpc_exec::{AsmProgram, Frontend, FrontendSource};
use tpc_isa::asm::{assemble, disassemble};
use tpc_oracle::{
    generate, run_differential, run_differential_faulted, standard_configs, Scenario,
};

fn examples() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/asm");
    let mut out = Vec::new();
    for entry in fs::read_dir(&dir).expect("examples/asm exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "asm") {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .expect("utf-8 file stem")
                .to_string();
            out.push((name, fs::read_to_string(&path).expect("readable example")));
        }
    }
    out.sort();
    assert!(out.len() >= 4, "expected the shipped examples, got {out:?}");
    out
}

#[test]
fn shipped_examples_are_strict_fixed_points() {
    for (name, src) in examples() {
        let p = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("{name} (reassembly): {e}"));
        assert_eq!(p, p2, "{name}: reassembly must be a fixed point:\n{text}");
        assert_eq!(text, disassemble(&p2), "{name}: text fixed point");
    }
}

#[test]
fn shipped_examples_pass_the_differential_matrix() {
    let configs = standard_configs();
    for (name, src) in examples() {
        let asm = AsmProgram::from_source(&name, &src).unwrap_or_else(|e| panic!("{name}: {e}"));
        run_differential(&asm, &configs, 2_000).unwrap_or_else(|d| panic!("{name}: diverged: {d}"));
        let plan = FaultPlan::all(0xA5A5 ^ asm.program().len() as u64, 40);
        run_differential_faulted(&asm, &configs, 2_000, plan)
            .unwrap_or_else(|d| panic!("{name}: diverged under faults: {d}"));
    }
}

#[test]
fn fuzz_corpus_settles_after_one_normalization_round() {
    for seed in 1..=20u64 {
        let p = generate(&Scenario::new(seed));
        let p1 = assemble(&disassemble(&p))
            .unwrap_or_else(|e| panic!("seed {seed}: first reassembly: {e}"));
        let p2 = assemble(&disassemble(&p1))
            .unwrap_or_else(|e| panic!("seed {seed}: second reassembly: {e}"));
        assert_eq!(p1, p2, "seed {seed}: one normalization round must settle");

        // Normalization may drop uncalled helper names and rewrite
        // model fields, but never what executes: the original and the
        // round-tripped program must retire identical streams.
        let mut a = p.frontend();
        let mut b = p1.frontend();
        for i in 0..2_000 {
            assert_eq!(
                a.next_retired(),
                b.next_retired(),
                "seed {seed}: streams diverge at instruction {i}"
            );
        }
    }
}
