//! Differential-oracle smoke suite.
//!
//! Runs every `cargo test`: 500+ structure-aware fuzzed programs,
//! each checked under every simulator configuration (baseline,
//! preconstruction, combined, unified) against the golden-model
//! oracle's retirement stream, with the conservation invariants
//! re-verified after every chunk. A divergence shrinks the scenario
//! and panics with a one-line reproducible command.
//!
//! Long runs (`fuzz_sim --budget-ms ...`) use the same machinery on
//! bigger programs; this suite keeps programs and instruction windows
//! small so a debug build finishes in seconds.

use tpc_oracle::fuzzgen::{FEAT_ALL, FEAT_CALLS, FEAT_DIAMONDS, FEAT_INDIRECT, FEAT_LOOPS};
use tpc_oracle::{check_and_shrink, Scenario};

/// Checks one scenario and panics with a reproducible command on
/// divergence.
fn check(s: Scenario, instrs: u64) {
    if let Err((shrunk, div)) = check_and_shrink(&s, instrs) {
        panic!(
            "differential divergence: {div}\n  shrunk to {shrunk}\n  reproduce: {}",
            shrunk.command()
        );
    }
}

/// The headline smoke test: 500 fuzzed programs, every configuration,
/// retirement streams identical to the oracle.
#[test]
fn fuzzed_programs_match_oracle_on_every_config() {
    for seed in 0..500u64 {
        check(
            Scenario {
                seed,
                size: 120,
                features: FEAT_ALL,
            },
            600,
        );
    }
}

/// A slice of deeper runs: fewer programs, larger programs, longer
/// instruction windows — enough retirements per program to cycle the
/// small 64-entry caches several times.
#[test]
fn deeper_fuzzed_programs_match_oracle() {
    for seed in 0..24u64 {
        check(
            Scenario {
                seed: 10_000 + seed,
                size: 900,
                features: FEAT_ALL,
            },
            6_000,
        );
    }
}

/// Single-feature classes in isolation — failures here point straight
/// at the construct that broke.
#[test]
fn single_feature_classes_match_oracle() {
    for (i, features) in [FEAT_LOOPS, FEAT_DIAMONDS, FEAT_CALLS, FEAT_INDIRECT]
        .into_iter()
        .enumerate()
    {
        for seed in 0..8u64 {
            check(
                Scenario {
                    seed: 20_000 + 100 * i as u64 + seed,
                    size: 300,
                    features,
                },
                2_000,
            );
        }
    }
}

/// The generated SPEC-like benchmark programs (the ones every
/// experiment sweeps) also match the oracle under every
/// configuration.
#[test]
fn workload_benchmarks_match_oracle() {
    use tpc_workloads::{Benchmark, WorkloadBuilder};
    for b in [Benchmark::Gcc, Benchmark::Go, Benchmark::Compress] {
        let program = WorkloadBuilder::new(b).seed(1).build();
        let report = tpc_oracle::run_differential(&program, &tpc_oracle::standard_configs(), 8_000)
            .unwrap_or_else(|d| panic!("{b:?}: {d}"));
        assert_eq!(report.configs, 4);
    }
}
