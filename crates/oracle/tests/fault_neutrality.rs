//! Fault injection is correctness-neutral — proven, not assumed.
//!
//! Preconstruction is hint hardware: retirement is driven by the
//! committed trace stream, and everything the fault layer perturbs
//! (bimodal counters, prefetch fills, constructors, precon-buffer
//! entries, the start-point stack) only steers *timing*. This suite
//! makes that argument mechanical: for hundreds of seeded
//! (program, fault-plan) pairs, every simulator configuration —
//! baseline, preconstruction, combined, unified — must retire the
//! golden model's exact instruction stream while faults demonstrably
//! fire, and the faults must still *do* something (statistics move).

use tpc_oracle::fuzzgen::{generate, FEAT_ALL, FEAT_CALLS, FEAT_INDIRECT, FEAT_LOOPS};
use tpc_oracle::{check_scenario_faulted, scenario_fault_plan, standard_configs, Scenario};
use tpc_processor::Simulator;

/// Checks one (program, fault-plan) pair; panics with a reproducible
/// fuzz_sim command on divergence. Returns how many faults landed.
fn check(s: Scenario, instrs: u64, per_mille: u32) -> u64 {
    match check_scenario_faulted(&s, instrs, per_mille) {
        Ok(report) => report.faults_landed,
        Err(div) => panic!(
            "faulted divergence: {div}\n  scenario {s}\n  reproduce: {} --faults {per_mille}",
            s.command()
        ),
    }
}

/// The headline robustness test: 500 fuzzed (program, fault-plan)
/// pairs at mixed intensities, every configuration, retirement
/// streams identical to the fault-free oracle. Across the run faults
/// must actually land — a vacuous pass (nothing ever fired) would be
/// a bug in the harness, not a proof.
#[test]
fn faulted_programs_match_oracle_on_every_config() {
    let mut landed_total = 0u64;
    for i in 0..500u64 {
        // Cycle intensities 10..50‰ so the suite covers both sparse
        // and heavy schedules.
        let per_mille = [10, 20, 30, 50][(i % 4) as usize];
        landed_total += check(
            Scenario {
                seed: 70_000 + i,
                size: 120,
                features: FEAT_ALL,
            },
            600,
            per_mille,
        );
    }
    assert!(
        landed_total > 1_000,
        "faults barely landed ({landed_total}) — the harness is not exercising anything"
    );
}

/// Deeper pairs: bigger programs and longer windows, heavy faulting,
/// enough retirements to churn the small caches repeatedly while the
/// fault layer corrupts, kills, and stalls around them.
#[test]
fn deeper_faulted_programs_match_oracle() {
    for i in 0..24u64 {
        check(
            Scenario {
                seed: 80_000 + i,
                size: 900,
                features: FEAT_ALL,
            },
            6_000,
            100,
        );
    }
}

/// Feature classes in isolation under faulting — a failure here
/// points at the construct whose hint path regressed.
#[test]
fn single_feature_classes_survive_faulting() {
    for (i, features) in [FEAT_LOOPS, FEAT_CALLS, FEAT_INDIRECT]
        .into_iter()
        .enumerate()
    {
        for seed in 0..8u64 {
            check(
                Scenario {
                    seed: 90_000 + 100 * i as u64 + seed,
                    size: 300,
                    features,
                },
                2_000,
                40,
            );
        }
    }
}

/// Faults may only move statistics, never retirement: for a sampled
/// scenario, the faulted run's non-fault counters differ from the
/// clean run's (the schedule really perturbed the machine), even
/// though the retirement comparison above held.
#[test]
fn faults_perturb_statistics_without_perturbing_retirement() {
    let s = Scenario {
        seed: 70_123,
        size: 300,
        features: FEAT_ALL,
    };
    let program = generate(&s);
    let mut perturbed = 0;
    for nc in standard_configs() {
        if !nc.config.engine.enabled {
            continue; // baseline has no hint hardware to perturb
        }
        let mut clean = Simulator::new(&program, nc.config.clone());
        clean.run(4_000);
        let mut faulted = Simulator::new(
            &program,
            nc.config.with_faults(scenario_fault_plan(&s, 100)),
        );
        faulted.run(4_000);
        let (cs, mut fs) = (clean.stats(), faulted.stats());
        assert!(fs.faults.landed > 0, "{}: no faults landed", nc.name);
        fs.faults = cs.faults;
        if cs != fs {
            perturbed += 1;
        }
    }
    assert!(
        perturbed > 0,
        "heavy faulting left every configuration's statistics untouched"
    );
}
