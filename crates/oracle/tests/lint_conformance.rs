//! Regression: the linter must accept every program our generators
//! emit, and the engine-conformance checker must hold over fuzzed
//! programs (it runs inside every differential check).
//!
//! Both generators emit backward branches only as loop latches
//! (branch targets are loop tops, which dominate their bodies); these
//! tests pin that property so a future generator change that breaks
//! it fails here rather than as a confusing lint divergence inside
//! the fuzzer.

use tpc_analysis::{has_errors, lint, Cfg, LintLevel};
use tpc_oracle::{generate, Scenario, FEAT_ALL};
use tpc_workloads::{Benchmark, WorkloadBuilder};

#[test]
fn every_workload_benchmark_lints_clean() {
    for benchmark in Benchmark::ALL {
        for seed in [1u64, 7, 42] {
            let program = WorkloadBuilder::new(benchmark)
                .seed(seed)
                .scale_permille(60)
                .build();
            let cfg = Cfg::build(&program);
            let lints = lint(&program, &cfg);
            assert!(
                !has_errors(&lints),
                "{} seed {seed}: {lints:?}",
                benchmark.name()
            );
        }
    }
}

#[test]
fn every_fuzz_scenario_lints_clean() {
    for seed in 0..40u64 {
        let scenario = Scenario {
            seed,
            size: 150 + (seed as u32) * 13 % 300,
            features: FEAT_ALL,
        };
        let program = generate(&scenario);
        let cfg = Cfg::build(&program);
        let lints = lint(&program, &cfg);
        assert!(!has_errors(&lints), "seed {seed}: {lints:?}");
    }
}

#[test]
fn generator_unreachable_helpers_are_warnings_not_errors() {
    // Helpers that nothing calls are legitimate generator output;
    // they must never be escalated to errors (the differential lint
    // gate would then reject every generated program).
    let program = WorkloadBuilder::new(Benchmark::Li).seed(3).build();
    let cfg = Cfg::build(&program);
    for l in lint(&program, &cfg) {
        assert_eq!(l.level(), LintLevel::Warning, "{l}");
    }
}
